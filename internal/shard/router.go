package shard

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/events"
	olog "repro/internal/obs/log"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/pkg/api"
)

// Config sizes the router. Zero values select the documented defaults.
type Config struct {
	Addr        string        // listen address (default :8090)
	URLs        []string      // backend base URLs (required)
	VNodes      int           // virtual nodes per replica (default DefaultVNodes)
	ProbeEvery  time.Duration // health-probe period (default 1s)
	FailAfter   int           // consecutive failures before ejection (default 2)
	MaxFailover int           // extra ring nodes tried after the primary (default 2)
	Replication int           // owner-set size K for keyed job submissions (default 1)
	HTTPClient  *http.Client  // optional downstream transport override (tests)

	// Logger receives request and lifecycle logs; nil discards them.
	Logger *olog.Logger
	// TraceCapacity bounds the in-memory span ring behind /debug/traces
	// (default obs.DefaultTraceCapacity).
	TraceCapacity int

	// Flight recorder: metrics history, event journal, SLO engine.
	HistoryInterval time.Duration   // tsdb sampling period (default 1s)
	HistoryCapacity int             // points kept per series (default 600)
	EventCapacity   int             // event-journal ring size (default 1024)
	SLOs            []slo.Objective // declared objectives (empty = always ok)
}

// Router fronts a ReplicaSet with the pkg/api HTTP surface. Keyed
// requests (infer by model, subsample by dataset, registration by name,
// job submission by dataset) go to the key's ring owner with bounded
// failover; listings and the version handshake scatter-gather; job
// lookups stick to the accepting replica through an ID suffix.
type Router struct {
	cfg     Config
	rs      *ReplicaSet
	met     *Metrics
	tracer  *obs.Tracer
	logger  *olog.Logger
	journal *events.Journal
	history *tsdb.Store
	sloEng  *slo.Engine
	httpSrv *http.Server
	start   time.Time

	// replication is the owner-set size K: a keyed job submission fans out
	// to the K distinct ring successors of its routing key, and a
	// resubmitted key found on any of them is answered from the existing
	// job instead of spawning a duplicate.
	replication int

	// owners remembers raw downstream job ID → (replica, idempotency key):
	// the fallback for clients that stripped the "@rN" suffix (the suffix
	// itself is the authoritative stateless mapping, since raw IDs are only
	// unique per replica), and the map that lets sticky reads re-find a
	// keyed job's replicated copy when its replica dies. Bounded LRU;
	// entries for ejected or removed replicas are evicted eagerly.
	owners *ownerCache
}

// NewRouter builds a ready-to-listen router. Call Start to launch the
// health prober and Shutdown to stop everything.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":8090"
	}
	if cfg.MaxFailover <= 0 {
		cfg.MaxFailover = 2
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	met := NewMetrics()
	journal := events.NewJournal("shard", cfg.EventCapacity)
	rs, err := NewReplicaSet(SetConfig{
		URLs: cfg.URLs, VNodes: cfg.VNodes,
		ProbeEvery: cfg.ProbeEvery, FailAfter: cfg.FailAfter,
		HTTPClient: cfg.HTTPClient, Journal: journal,
	}, met)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:         cfg,
		rs:          rs,
		met:         met,
		tracer:      obs.NewTracer("shard", cfg.TraceCapacity),
		logger:      cfg.Logger,
		journal:     journal,
		start:       time.Now(),
		replication: cfg.Replication,
		owners:      newOwnerCache(maxJobOwnerEntries),
	}
	// A replica leaving the ring for health reasons takes its sticky-cache
	// entries with it: the cache must never pin routing state at a dead
	// replica (and unbounded growth from ejected members was how the old
	// map leaked).
	rs.OnEject(func(id string) { rt.owners.ForgetReplica(id) })
	met.Registry().GaugeFunc("sickle_shard_owner_set_size",
		"Members in each key's owner set: the replication factor, bounded by ring size.",
		func() float64 {
			n := rt.rs.RingMembers()
			if rt.replication < n {
				n = rt.replication
			}
			return float64(n)
		})
	rt.tracer.RegisterDropped(met.Registry())
	journal.Register(met.Registry())
	rt.history = tsdb.NewStore("shard", met.Registry(), cfg.HistoryInterval, cfg.HistoryCapacity)
	rt.sloEng = slo.NewEngine("shard", rt.history, slo.ShardMetrics, cfg.SLOs,
		met.Registry(), journal)
	rt.httpSrv = &http.Server{Addr: cfg.Addr, Handler: rt.Handler()}
	return rt, nil
}

// ReplicaSet exposes the replica set (tests, healthz embedders).
func (rt *Router) ReplicaSet() *ReplicaSet { return rt.rs }

// Metrics exposes the collector (tests).
func (rt *Router) Metrics() *Metrics { return rt.met }

// Tracer exposes the span ring behind /debug/traces (tests and embedders).
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// Journal exposes the event journal behind /debug/events.
func (rt *Router) Journal() *events.Journal { return rt.journal }

// History exposes the metrics-history store behind /debug/history.
func (rt *Router) History() *tsdb.Store { return rt.history }

// SLO exposes the burn-rate engine behind /debug/slo.
func (rt *Router) SLO() *slo.Engine { return rt.sloEng }

// Start launches the background health prober and the history sampler.
func (rt *Router) Start() {
	rt.rs.Start()
	rt.history.Start()
}

// ListenAndServe blocks serving on cfg.Addr until Shutdown.
func (rt *Router) ListenAndServe() error {
	l, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Serve blocks serving on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	err := rt.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown stops accepting, waits for in-flight handlers (each bounded by
// its own request context), and halts the prober. Backends are left
// running — they are not the router's to stop.
func (rt *Router) Shutdown(ctx context.Context) error {
	err := rt.httpSrv.Shutdown(ctx)
	rt.rs.Stop()
	rt.history.Stop()
	return err
}

// Handler returns the route mux (also usable under httptest). The surface
// mirrors internal/serve's v2 routes byte for byte, including the typed
// 405/404 fallbacks, so pkg/client works unchanged against the router.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.instrument("/healthz", rt.handleHealthz))
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("GET /debug/traces", rt.tracer.HandleTraceList)
	mux.HandleFunc("GET /debug/traces/{id}", rt.handleDebugTrace)
	mux.HandleFunc("GET /debug/history", rt.handleDebugHistory)
	mux.HandleFunc("GET /debug/events", rt.handleDebugEvents)
	rt.sloEng.Mount(mux)
	mux.HandleFunc("GET /api/version", rt.instrument("/api/version", rt.handleVersion))

	mux.HandleFunc("POST /v2/infer", rt.instrument("/v2/infer", rt.handleInfer))
	mux.HandleFunc("POST /v2/subsample", rt.instrument("/v2/subsample", rt.handleSubsample))
	mux.HandleFunc("GET /v2/models", rt.instrument("/v2/models", rt.handleListModels))
	mux.HandleFunc("POST /v2/models", rt.instrument("/v2/models", rt.handleRegisterModel))
	mux.HandleFunc("POST /v2/jobs", rt.instrument("/v2/jobs", rt.handleSubmitJob))
	mux.HandleFunc("GET /v2/jobs", rt.instrument("/v2/jobs", rt.handleListJobs))
	mux.HandleFunc("GET /v2/jobs/{id}", rt.instrument("/v2/jobs/{id}", rt.handleGetJob))
	mux.HandleFunc("DELETE /v2/jobs/{id}", rt.instrument("/v2/jobs/{id}", rt.handleCancelJob))
	mux.HandleFunc("GET /v2/jobs/{id}/result", rt.instrument("/v2/jobs/{id}/result", rt.handleJobResult))
	mux.HandleFunc("GET /v2/keys/{key}", rt.instrument("/v2/keys/{key}", rt.handleGetJobByKey))

	mux.HandleFunc("GET /admin/replicas", rt.instrument("/admin/replicas", rt.handleAdminListReplicas))
	mux.HandleFunc("POST /admin/replicas", rt.instrument("/admin/replicas", rt.handleAdminJoinReplica))
	mux.HandleFunc("DELETE /admin/replicas/{id}", rt.instrument("/admin/replicas/{id}", rt.handleAdminDrainReplica))

	methodNotAllowed := func(allow string) func(http.ResponseWriter, *http.Request) error {
		return func(w http.ResponseWriter, r *http.Request) error {
			w.Header().Set("Allow", allow)
			return writeAPIError(w, api.Errorf(api.CodeMethodNotAllowed, "%s only", allow))
		}
	}
	mux.HandleFunc("/v2/infer", rt.instrument("/v2/infer", methodNotAllowed("POST")))
	mux.HandleFunc("/v2/subsample", rt.instrument("/v2/subsample", methodNotAllowed("POST")))
	mux.HandleFunc("/v2/models", rt.instrument("/v2/models", methodNotAllowed("GET, POST")))
	mux.HandleFunc("/v2/jobs", rt.instrument("/v2/jobs", methodNotAllowed("GET, POST")))
	mux.HandleFunc("/v2/keys/{key}", rt.instrument("/v2/keys/{key}", methodNotAllowed("GET")))
	mux.HandleFunc("/v2/jobs/{id}", rt.instrument("/v2/jobs/{id}", methodNotAllowed("GET, DELETE")))
	mux.HandleFunc("/v2/jobs/{id}/result", rt.instrument("/v2/jobs/{id}/result", methodNotAllowed("GET")))
	mux.HandleFunc("/v2/", rt.instrument("/v2/", func(w http.ResponseWriter, r *http.Request) error {
		return writeAPIError(w, api.Errorf(api.CodeNotFound, "no route %s %s", r.Method, r.URL.Path))
	}))
	mux.HandleFunc("/api/version", rt.instrument("/api/version", methodNotAllowed("GET")))
	mux.HandleFunc("/admin/replicas", rt.instrument("/admin/replicas", methodNotAllowed("GET, POST")))
	mux.HandleFunc("/admin/replicas/{id}", rt.instrument("/admin/replicas/{id}", methodNotAllowed("DELETE")))
	return mux
}

// instrument wraps a handler with latency/error accounting, a router span
// (joining the caller's trace when an X-Sickle-Trace header is present,
// minting one otherwise), and a trace-ID-stamped request log.
func (rt *Router) instrument(route string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if tc, ok := api.ParseTraceHeader(r.Header.Get(api.TraceHeader)); ok {
			ctx = api.WithTrace(ctx, tc)
		}
		ctx, span := rt.tracer.StartSpan(ctx, "router:"+route)
		span.SetAttr("method", r.Method)
		t0 := time.Now()
		err := h(w, r.WithContext(ctx))
		d := time.Since(t0)
		rt.met.ObserveRequestEx(route, d, err != nil, span.TraceID())
		if err != nil {
			span.SetAttr("error", string(api.AsError(err).Code))
		}
		span.End()
		if rt.logger.Enabled(olog.LevelDebug) || err != nil {
			kv := []any{"route", route, "method", r.Method,
				"trace", span.TraceID(), "seconds", d.Seconds()}
			if err != nil {
				rt.logger.Warn("request failed", append(kv, "error", err.Error())...)
			} else {
				rt.logger.Debug("request", kv...)
			}
		}
	}
}

// ---- routing core ----

// route tries fn against each consistent-hash candidate for key in ring
// order: the owner first, then up to MaxFailover successors. A replica
// that is overloaded or draining triggers failover to the next candidate;
// one that is unreachable (typed unavailable — also dinging its health)
// fails over only when retryUnavailable is set, because an unreachable
// answer cannot distinguish "never delivered" from "accepted, response
// lost" — safe for idempotent work only. Reads and infer calls qualify
// by nature; job submissions qualify exactly when the client supplied
// an idempotency key, which lets the backend deduplicate a resubmission
// (unkeyed submissions stay at-most-once). Any other answer — success
// or an application-level error — is final and passes through
// unchanged. Returns the replica that answered.
//
// Tracing: one route:<key> span covers the whole candidate walk, with one
// client:<replicaID> child span per attempt; fn receives the attempt's
// context so the downstream call (and the X-Sickle-Trace header pkg/client
// attaches) is parented to its own attempt.
func (rt *Router) route(ctx context.Context, key string, retryUnavailable bool, fn func(context.Context, *Replica) error) (*Replica, error) {
	cands := rt.rs.Sequence(key, 1+rt.cfg.MaxFailover)
	if len(cands) == 0 {
		return nil, api.Errorf(api.CodeUnavailable, "shard: no replicas configured")
	}
	ctx, routeSpan := rt.tracer.StartSpan(ctx, "route:"+key)
	defer routeSpan.End()
	var lastErr error
	for i, r := range cands {
		if i > 0 {
			rt.met.ObserveFailover()
			rt.journal.Emit(events.TypeFailover, "request failed over to a non-primary ring node",
				routeSpan.TraceID(), "key", key, "replica", r.ID, "attempt", strconv.Itoa(i))
		}
		attemptCtx, attempt := rt.tracer.StartSpan(ctx, "client:"+r.ID)
		attempt.SetAttr("url", r.URL)
		if i > 0 {
			attempt.SetAttr("failover", strconv.Itoa(i))
		}
		err := fn(attemptCtx, r)
		if err != nil {
			attempt.SetAttr("error", string(api.AsError(err).Code))
		}
		attempt.End()
		if err == nil {
			routeSpan.SetAttr("replica", r.ID)
			rt.met.ObserveRouted(r.ID)
			rt.rs.NoteOK(r)
			return r, nil
		}
		lastErr = err
		switch api.AsError(err).Code {
		case api.CodeUnavailable:
			rt.met.ObserveFailed(r.ID)
			rt.rs.NoteFailure(r, err)
			if !retryUnavailable {
				return r, err
			}
		case api.CodeOverloaded, api.CodeShuttingDown:
			// Busy or draining, not dead: try the next ring node without
			// dinging the replica's health. Nothing was admitted, so this is
			// safe even for submissions.
			rt.met.ObserveFailed(r.ID)
		default:
			// A real application answer (bad request, model_not_found, the
			// client hanging up): final.
			return r, err
		}
	}
	return nil, lastErr
}

// scatter runs fn against every live replica concurrently (falling back to
// all replicas when everything is ejected) and reports how many calls
// succeeded. fn must be safe for concurrent use across replicas.
func (rt *Router) scatter(fn func(*Replica) error) int {
	replicas := rt.rs.Live()
	if len(replicas) == 0 {
		replicas = rt.rs.Replicas()
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok := 0
	for _, r := range replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			err := fn(r)
			if err != nil {
				if api.AsError(err).Code == api.CodeUnavailable {
					rt.rs.NoteFailure(r, err)
				}
				return
			}
			rt.rs.NoteOK(r)
			mu.Lock()
			ok++
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return ok
}

// ---- keyed handlers (consistent hash + failover) ----

func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) error {
	var req api.InferRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	var resp *api.InferResponse
	_, err := rt.route(r.Context(), req.Model, true, func(ctx context.Context, rep *Replica) error {
		out, err := rep.C.Infer(ctx, &req)
		if err != nil {
			return err
		}
		resp = out
		return nil
	})
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleSubsample(w http.ResponseWriter, r *http.Request) error {
	var req api.SubsampleRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	var resp *api.SubsampleResponse
	_, err := rt.route(r.Context(), subsampleKey(&req), true, func(ctx context.Context, rep *Replica) error {
		out, err := rep.C.Subsample(ctx, &req)
		if err != nil {
			return err
		}
		resp = out
		return nil
	})
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleRegisterModel(w http.ResponseWriter, r *http.Request) error {
	var req api.RegisterModelRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	// Registration is retried on unavailable: a duplicate registration is a
	// harmless hot-swap to identical weights, and the infer failover order
	// visits the same successor the retry lands on.
	var info *api.ModelInfo
	_, err := rt.route(r.Context(), req.Name, true, func(ctx context.Context, rep *Replica) error {
		out, err := rep.C.RegisterModel(ctx, &req)
		if err != nil {
			return err
		}
		info = out
		return nil
	})
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, info)
}

// subsampleKey picks the routing key that keeps a dataset's LRU entry hot
// on one replica: the shard path when set, else the dataset name.
func subsampleKey(req *api.SubsampleRequest) string {
	if req.Shard != "" {
		return req.Shard
	}
	return req.Dataset
}

// ---- scatter-gather handlers ----

func (rt *Router) handleListModels(w http.ResponseWriter, r *http.Request) error {
	var mu sync.Mutex
	merged := map[string]api.ModelInfo{}
	ok := rt.scatter(func(rep *Replica) error {
		models, err := rep.C.Models(r.Context())
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, m := range models {
			if have, dup := merged[m.Name]; !dup || m.Version > have.Version {
				merged[m.Name] = m
			}
		}
		return nil
	})
	if ok == 0 {
		return writeAPIError(w, api.Errorf(api.CodeUnavailable, "shard: no replica answered GET /v2/models"))
	}
	out := make([]api.ModelInfo, 0, len(merged))
	for _, name := range sortedKeys(merged) {
		out = append(out, merged[name])
	}
	return writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleVersion(w http.ResponseWriter, r *http.Request) error {
	var mu sync.Mutex
	var infos []*api.VersionInfo
	ok := rt.scatter(func(rep *Replica) error {
		info, err := rep.C.ServerVersions(r.Context())
		if err != nil {
			return err
		}
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
		return nil
	})
	if ok == 0 {
		return writeAPIError(w, api.Errorf(api.CodeUnavailable, "shard: no replica answered GET /api/version"))
	}
	// Intersect: a version is served only if every answering replica
	// speaks it (order kept from the first reply, oldest first).
	common := append([]string(nil), infos[0].Versions...)
	for _, info := range infos[1:] {
		kept := common[:0]
		for _, v := range common {
			for _, have := range info.Versions {
				if v == have {
					kept = append(kept, v)
					break
				}
			}
		}
		common = kept
	}
	out := api.VersionInfo{Versions: common}
	if len(common) > 0 {
		out.Latest = common[len(common)-1]
	}
	return writeJSON(w, http.StatusOK, out)
}

// ---- job handlers (sticky job-ID -> replica) ----

// Job IDs leaving the router carry the accepting replica as a suffix
// ("job-3@r1"): raw downstream IDs are only unique per replica, and the
// suffix makes the sticky mapping stateless — it survives a router
// restart with no shared store.
const jobIDSep = "@"

func splitJobID(id string) (raw, replicaID string) {
	if i := strings.LastIndex(id, jobIDSep); i >= 0 {
		return id[:i], id[i+1:]
	}
	return id, ""
}

// maxJobOwnerEntries bounds the sticky-cache fallback; the suffix is the
// authoritative mapping, so an evicted entry only affects clients that
// strip it (their read degrades to job_not_found, never to a wrong job).
const maxJobOwnerEntries = 8192

func (rt *Router) rememberJob(raw, replicaID, key string) {
	rt.owners.Remember(raw, replicaID, key)
}

// jobReplica resolves a client-facing job ID to (raw downstream ID,
// owning replica): the "@rN" suffix when present, else the sticky cache.
func (rt *Router) jobReplica(id string) (string, *Replica, error) {
	raw, rid := splitJobID(id)
	if rid == "" {
		rid, _ = rt.owners.Resolve(raw)
	}
	if rid == "" {
		return "", nil, api.Errorf(api.CodeJobNotFound, "shard: no job %q", id)
	}
	rep, ok := rt.rs.Get(rid)
	if !ok {
		return "", nil, api.Errorf(api.CodeJobNotFound, "shard: job %q names unknown replica %q", id, rid)
	}
	return raw, rep, nil
}

// submitKey routes a job to the replica whose caches its payload will
// touch: the subsample/train dataset when present, else the job type.
func submitKey(req *api.SubmitJobRequest) string {
	switch {
	case req.Subsample != nil:
		return subsampleKey(req.Subsample)
	case req.Train != nil:
		return req.Train.Dataset
	}
	return string(req.Type)
}

// consultOwners checks every member of routeKey's owner set for a job
// already holding idemKey (serially, in ring order — the nearest healthy
// owner answers first). An unreachable owner counts against its health
// and the walk moves on; an owner without the key is simply a miss.
func (rt *Router) consultOwners(ctx context.Context, routeKey, idemKey string) (*api.Job, *Replica, bool) {
	for _, rep := range rt.rs.Sequence(routeKey, rt.replication) {
		job, err := rep.C.JobByKey(ctx, idemKey)
		if err == nil {
			rt.rs.NoteOK(rep)
			return job, rep, true
		}
		if api.AsError(err).Code == api.CodeUnavailable {
			rt.met.ObserveFailed(rep.ID)
			rt.rs.NoteFailure(rep, err)
		}
	}
	return nil, nil, false
}

// replicate copies a keyed submission onto the remaining members of its
// owner set, concurrently and best-effort: runners are deterministic and
// results content-addressed, so a copy is just pre-positioned redundancy —
// a fan-out failure loses nothing (the admitted primary copy exists) and
// only costs the key its failover cover. Returns once every copy has been
// admitted or failed, so a caller observing the submit response can rely
// on the owner set being populated.
func (rt *Router) replicate(ctx context.Context, routeKey string, req *api.SubmitJobRequest, admitted *Replica) {
	if rt.replication <= 1 {
		return
	}
	var wg sync.WaitGroup
	for _, rep := range rt.rs.Sequence(routeKey, rt.replication) {
		if rep == admitted {
			continue
		}
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			out, err := rep.C.SubmitJob(ctx, req)
			if err != nil {
				rt.met.ObserveOwnerReplicationFailure()
				if api.AsError(err).Code == api.CodeUnavailable {
					rt.rs.NoteFailure(rep, err)
				}
				return
			}
			rt.rs.NoteOK(rep)
			rt.met.ObserveOwnerReplication(rep.ID)
			rt.rememberJob(out.ID, rep.ID, req.IdempotencyKey)
		}(rep)
	}
	wg.Wait()
}

func (rt *Router) handleSubmitJob(w http.ResponseWriter, r *http.Request) error {
	var req api.SubmitJobRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	key := submitKey(&req)
	// A keyed submission consults the full owner set before creating
	// anything: after a failover the key's original job may live on any
	// owner — including one the current ring no longer ranks first — and
	// answering from it is what keeps a resubmission from becoming a
	// fleet-level duplicate.
	if req.IdempotencyKey != "" {
		if job, rep, ok := rt.consultOwners(r.Context(), key, req.IdempotencyKey); ok {
			rt.met.ObserveOwnerDedupHit()
			tc, _ := api.TraceFrom(r.Context())
			rt.journal.Emit(events.TypeDedupHit, "keyed resubmission answered from the owner set",
				tc.TraceID, "kind", "owner_set", "replica", rep.ID, "job", job.ID)
			rt.rememberJob(job.ID, rep.ID, req.IdempotencyKey)
			rt.met.ObserveRouted(rep.ID)
			job.ID = job.ID + jobIDSep + rep.ID
			return writeJSON(w, http.StatusOK, job)
		}
	}
	// Unkeyed submissions never fail over on unavailable: the backend may
	// have admitted the job before the connection died, and a retry
	// elsewhere would run it twice. An idempotency key removes that
	// hazard — the backend deduplicates by key, so an unavailable answer
	// is safe to retry on the next ring candidate (and the client SDK's
	// own retry, landing back on the same primary after a restart,
	// observes the original job). Overloaded/draining refusals (nothing
	// admitted) always move on; once the prober ejects a dead primary,
	// new submissions hash straight to its successor.
	var job *api.Job
	rep, err := rt.route(r.Context(), key, req.IdempotencyKey != "",
		func(ctx context.Context, rep *Replica) error {
			out, err := rep.C.SubmitJob(ctx, &req)
			if err != nil {
				return err
			}
			job = out
			return nil
		})
	if err != nil {
		return writeAPIError(w, err)
	}
	rt.rememberJob(job.ID, rep.ID, req.IdempotencyKey)
	if req.IdempotencyKey != "" {
		rt.replicate(r.Context(), key, &req, rep)
	}
	job.ID = job.ID + jobIDSep + rep.ID
	return writeJSON(w, http.StatusAccepted, job)
}

func (rt *Router) handleListJobs(w http.ResponseWriter, r *http.Request) error {
	var mu sync.Mutex
	var all []api.Job
	ok := rt.scatter(func(rep *Replica) error {
		jobs, err := rep.C.Jobs(r.Context())
		if err != nil {
			return err
		}
		for i := range jobs {
			rt.rememberJob(jobs[i].ID, rep.ID, jobs[i].IdempotencyKey)
			jobs[i].ID = jobs[i].ID + jobIDSep + rep.ID
		}
		mu.Lock()
		all = append(all, jobs...)
		mu.Unlock()
		return nil
	})
	if ok == 0 {
		return writeAPIError(w, api.Errorf(api.CodeUnavailable, "shard: no replica answered GET /v2/jobs"))
	}
	sort.Slice(all, func(a, b int) bool {
		if !all[a].CreatedAt.Equal(all[b].CreatedAt) {
			return all[a].CreatedAt.Before(all[b].CreatedAt)
		}
		return all[a].ID < all[b].ID
	})
	// Replicated copies of one keyed submission are one logical job: keep
	// the oldest copy per key so the fleet listing counts work, not fan-out.
	seenKey := map[string]bool{}
	kept := all[:0]
	for _, j := range all {
		if k := j.IdempotencyKey; k != "" {
			if seenKey[k] {
				continue
			}
			seenKey[k] = true
		}
		kept = append(kept, j)
	}
	return writeJSON(w, http.StatusOK, kept)
}

// findReplicated re-finds a keyed job's copy on another owner after the
// replica holding it became unreachable: the sticky cache yields the
// idempotency key the job was submitted under (only while its entry still
// names the dead replica — a stale entry must not redirect the read), and
// a by-key scan of the live members locates a surviving copy.
func (rt *Router) findReplicated(ctx context.Context, raw, deadID string) (*api.Job, *Replica, bool) {
	key := rt.owners.Key(raw, deadID)
	if key == "" {
		return nil, nil, false
	}
	for _, rep := range rt.rs.Live() {
		if rep.ID == deadID {
			continue
		}
		job, err := rep.C.JobByKey(ctx, key)
		if err != nil {
			continue
		}
		rt.rs.NoteOK(rep)
		return job, rep, true
	}
	return nil, nil, false
}

// forwardJob forwards one sticky job call to the owning replica and
// rewrites the returned snapshot's ID back to the client-facing form.
// There is no general failover — the job state lives only there — but
// when the replica is unreachable and the job was keyed-and-replicated,
// the call is retried once against a surviving owner-set copy.
func (rt *Router) forwardJob(ctx context.Context, w http.ResponseWriter, id string,
	call func(ctx context.Context, rep *Replica, raw string) (*api.Job, error)) error {
	raw, rep, err := rt.jobReplica(id)
	if err != nil {
		return writeAPIError(w, err)
	}
	job, err := call(ctx, rep, raw)
	if err != nil {
		if api.AsError(err).Code == api.CodeUnavailable {
			rt.rs.NoteFailure(rep, err)
			if copyJob, copyRep, ok := rt.findReplicated(ctx, raw, rep.ID); ok {
				if job2, err2 := call(ctx, copyRep, copyJob.ID); err2 == nil {
					rt.met.ObserveRouted(copyRep.ID)
					job2.ID = job2.ID + jobIDSep + copyRep.ID
					return writeJSON(w, http.StatusOK, job2)
				}
			}
		}
		return writeAPIError(w, err)
	}
	rt.rs.NoteOK(rep)
	rt.met.ObserveRouted(rep.ID)
	job.ID = job.ID + jobIDSep + rep.ID
	return writeJSON(w, http.StatusOK, job)
}

func (rt *Router) handleGetJob(w http.ResponseWriter, r *http.Request) error {
	return rt.forwardJob(r.Context(), w, r.PathValue("id"),
		func(ctx context.Context, rep *Replica, raw string) (*api.Job, error) {
			return rep.C.Job(ctx, raw)
		})
}

func (rt *Router) handleCancelJob(w http.ResponseWriter, r *http.Request) error {
	return rt.forwardJob(r.Context(), w, r.PathValue("id"),
		func(ctx context.Context, rep *Replica, raw string) (*api.Job, error) {
			return rep.C.CancelJob(ctx, raw)
		})
}

func (rt *Router) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	raw, rep, err := rt.jobReplica(r.PathValue("id"))
	if err != nil {
		return writeAPIError(w, err)
	}
	res, err := rep.C.JobResult(r.Context(), raw)
	if err != nil {
		if api.AsError(err).Code == api.CodeUnavailable {
			rt.rs.NoteFailure(rep, err)
			if copyJob, copyRep, ok := rt.findReplicated(r.Context(), raw, rep.ID); ok {
				if res2, err2 := copyRep.C.JobResult(r.Context(), copyJob.ID); err2 == nil {
					rt.met.ObserveRouted(copyRep.ID)
					return writeJSON(w, http.StatusOK, res2)
				}
			}
		}
		return writeAPIError(w, err)
	}
	rt.rs.NoteOK(rep)
	rt.met.ObserveRouted(rep.ID)
	return writeJSON(w, http.StatusOK, res)
}

// handleGetJobByKey mirrors the replica-side by-key lookup at fleet scope:
// scan the live members for the key's job (ring-independent — the key may
// have been owned by a membership that no longer exists).
func (rt *Router) handleGetJobByKey(w http.ResponseWriter, r *http.Request) error {
	key, err := url.PathUnescape(r.PathValue("key"))
	if err != nil {
		return writeAPIError(w, api.Errorf(api.CodeInvalidArgument, "bad idempotency key encoding: %v", err))
	}
	for _, rep := range rt.rs.Live() {
		job, jerr := rep.C.JobByKey(r.Context(), key)
		if jerr != nil {
			if api.AsError(jerr).Code == api.CodeUnavailable {
				rt.rs.NoteFailure(rep, jerr)
			}
			continue
		}
		rt.rs.NoteOK(rep)
		rt.met.ObserveRouted(rep.ID)
		rt.rememberJob(job.ID, rep.ID, key)
		job.ID = job.ID + jobIDSep + rep.ID
		return writeJSON(w, http.StatusOK, job)
	}
	return writeAPIError(w, api.Errorf(api.CodeJobNotFound, "shard: no job under idempotency key %q", key))
}

// ---- membership admin API ----

// rebalanceProbes is how many synthetic keys sample the keyspace when
// estimating how much primary ownership a membership change moved.
const rebalanceProbes = 256

// sampleOwners records the primary owner of each probe key under the
// current ring; diffing two samples across a membership change estimates
// the moved keyspace share (which consistent hashing keeps near 1/N).
func (rt *Router) sampleOwners() []string {
	out := make([]string, rebalanceProbes)
	for i := range out {
		if rep, ok := rt.rs.Owner("rebalance-probe-" + strconv.Itoa(i)); ok {
			out[i] = rep.ID
		}
	}
	return out
}

// noteRebalance diffs probe-key ownership against a pre-change sample,
// records the moved share, and journals the rebalance.
func (rt *Router) noteRebalance(before []string, kind, traceID string) {
	after := rt.sampleOwners()
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	share := float64(moved) / float64(len(before))
	rt.met.ObserveRebalance(share)
	rt.journal.Emit(events.TypeRebalance, "keyspace ownership rebalanced", traceID,
		"kind", kind, "moved_share", strconv.FormatFloat(share, 'f', 3, 64))
}

func (rt *Router) handleAdminListReplicas(w http.ResponseWriter, _ *http.Request) error {
	out := api.AdminReplicas{Replication: rt.replication, Replicas: []api.AdminReplica{}}
	for _, s := range rt.rs.Snapshot() {
		out.Replicas = append(out.Replicas, api.AdminReplica{
			ID: s.ID, URL: s.URL, Up: s.Up, Draining: s.Draining,
		})
	}
	return writeJSON(w, http.StatusOK, out)
}

// handleAdminJoinReplica brings a running backend into the ring: create it
// as a pending (off-ring) member, health-check it, warm-prefetch the
// fleet's model catalog onto it, and only then admit it — a newcomer never
// takes keyed traffic with a cold cache.
func (rt *Router) handleAdminJoinReplica(w http.ResponseWriter, r *http.Request) error {
	var req api.JoinReplicaRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	if strings.TrimSpace(req.URL) == "" {
		return writeAPIError(w, api.Errorf(api.CodeInvalidArgument, "shard: join needs a backend url"))
	}
	before := rt.sampleOwners()
	rep, err := rt.rs.AddReplica(req.URL)
	if err != nil {
		return writeAPIError(w, api.Errorf(api.CodeInvalidArgument, "%v", err))
	}
	if _, err := rep.C.Health(r.Context()); err != nil {
		rt.rs.RemoveReplica(rep.ID)
		return writeAPIError(w, api.Errorf(api.CodeUnavailable,
			"shard: replica at %s failed its admission health check: %v", rep.URL, err))
	}
	prefetched := rt.prefetchModels(r.Context(), rep)
	if !rt.rs.Admit(rep) {
		return writeAPIError(w, api.Errorf(api.CodeUnavailable,
			"shard: replica %s was removed before admission", rep.ID))
	}
	tc, _ := api.TraceFrom(r.Context())
	rt.journal.Emit(events.TypeReplicaJoin, "replica joined the ring", tc.TraceID,
		"replica", rep.ID, "url", rep.URL, "prefetched", strconv.Itoa(len(prefetched)))
	rt.noteRebalance(before, "join", tc.TraceID)
	if prefetched == nil {
		prefetched = []string{}
	}
	return writeJSON(w, http.StatusOK, api.JoinReplicaResponse{
		Replica:          api.AdminReplica{ID: rep.ID, URL: rep.URL, Up: true},
		PrefetchedModels: prefetched,
	})
}

// prefetchModels warm-caches the fleet's model catalog onto a pending
// replica: scatter the current members for their newest version of each
// model, then register every checkpoint-backed one on the newcomer.
// Best-effort — a model whose checkpoint the newcomer cannot load is
// skipped, not fatal (it will 404 there and fail over like today).
func (rt *Router) prefetchModels(ctx context.Context, rep *Replica) []string {
	var mu sync.Mutex
	catalog := map[string]api.ModelInfo{}
	rt.scatter(func(peer *Replica) error {
		if peer == rep {
			return nil
		}
		models, err := peer.C.Models(ctx)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, m := range models {
			if have, dup := catalog[m.Name]; !dup || m.Version > have.Version {
				catalog[m.Name] = m
			}
		}
		return nil
	})
	var prefetched []string
	for _, name := range sortedKeys(catalog) {
		m := catalog[name]
		if m.Checkpoint == "" {
			continue // nothing on disk to reload it from
		}
		_, err := rep.C.RegisterModel(ctx, &api.RegisterModelRequest{
			Name: m.Name, Spec: m.Spec, Checkpoint: m.Checkpoint,
			InputShape: m.InputShape, Replicas: m.Replicas,
		})
		if err == nil {
			prefetched = append(prefetched, m.Name)
		}
	}
	return prefetched
}

// handleAdminDrainReplica is the rolling-drain orchestration: the replica
// leaves both rings immediately (no new keyed traffic), its sticky jobs
// bleed to terminal states (bounded by the request context; skipped with
// ?force=true), and only then is it removed from the membership — into
// the retired set, so job IDs minted while it was a member keep resolving.
func (rt *Router) handleAdminDrainReplica(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	force := r.URL.Query().Get("force") == "true"
	before := rt.sampleOwners()
	rep, ok := rt.rs.SetDraining(id)
	if !ok {
		return writeAPIError(w, api.Errorf(api.CodeNotFound, "shard: no replica %q", id))
	}
	tc, _ := api.TraceFrom(r.Context())
	rt.journal.Emit(events.TypeReplicaDrain, "replica draining before removal", tc.TraceID,
		"replica", rep.ID, "url", rep.URL, "force", strconv.FormatBool(force))
	drained := 0
	if !force {
		n, err := rt.bleedJobs(r.Context(), rep)
		if err != nil {
			// Left draining, off-ring: the operator can retry, wait longer,
			// or force the removal.
			return writeAPIError(w, err)
		}
		drained = n
	}
	rt.rs.RemoveReplica(rep.ID)
	rt.owners.ForgetReplica(rep.ID)
	rt.journal.Emit(events.TypeReplicaLeave, "replica removed from the membership", tc.TraceID,
		"replica", rep.ID, "url", rep.URL, "drained_jobs", strconv.Itoa(drained))
	rt.noteRebalance(before, "leave", tc.TraceID)
	return writeJSON(w, http.StatusOK, api.DrainReplicaResponse{
		Replica:     api.AdminReplica{ID: rep.ID, URL: rep.URL, Up: rep.Up()},
		DrainedJobs: drained,
	})
}

// bleedJobs polls a draining replica until none of its jobs are live,
// returning how many were still running when the drain began. A poll
// failure is not fatal — the replica may be briefly busy — only the
// context deadline ends the wait early.
func (rt *Router) bleedJobs(ctx context.Context, rep *Replica) (int, error) {
	first := 0
	counted := false
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		jobs, err := rep.C.Jobs(ctx)
		if err == nil {
			n := 0
			for _, j := range jobs {
				if !j.State.Terminal() {
					n++
				}
			}
			if !counted {
				first, counted = n, true
			}
			if n == 0 {
				return first, nil
			}
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return first, api.AsError(ctx.Err())
		}
	}
}

// ---- plain endpoints ----

// handleHealthz aggregates the prober's latest view: the router itself
// always answers 200 (it is alive); Status says whether any backend is.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	snap := rt.rs.Snapshot()
	h := api.Health{
		Status:        "down",
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Models:        []string{},
		Replication:   rt.replication,
	}
	modelSet := map[string]struct{}{}
	for _, s := range snap {
		rh := api.ReplicaHealth{ID: s.ID, URL: s.URL, Up: s.Up, Draining: s.Draining,
			Status: s.Health.Status, ConsecutiveFailures: s.ConsecFails}
		if s.LastErr != nil {
			rh.Error = s.LastErr.Error()
		}
		h.Replicas = append(h.Replicas, rh)
		if !s.Up {
			continue
		}
		h.Status = "ok"
		h.QueueDepth += s.Health.QueueDepth
		for _, m := range s.Health.Models {
			modelSet[m] = struct{}{}
		}
		for state, n := range s.Health.Jobs {
			if h.Jobs == nil {
				h.Jobs = map[string]int{}
			}
			h.Jobs[state] += n
		}
	}
	for _, m := range sortedKeys(modelSet) {
		h.Models = append(h.Models, m)
	}
	// The router's own SLOs can degrade an otherwise-ok fleet view; a
	// fully down fleet stays "down" (worse than degraded).
	if h.Status == "ok" && rt.sloEng.Status() == "degraded" {
		h.Status = "degraded"
	}
	return writeJSON(w, http.StatusOK, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(rt.met.Render()))
}

// handleDebugTrace merges the router's own spans for one trace with the
// spans every live replica recorded for it, yielding the end-to-end view
// (router, client attempts, replica server/queue/execute) in one payload.
// Replicas that do not know the trace (or are down) are skipped; the merge
// is best-effort and bounded by a short timeout.
func (rt *Router) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := rt.tracer.Spans(id)

	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var mu sync.Mutex
	rt.scatter(func(rep *Replica) error {
		raw, err := rep.C.DebugTraceJSON(ctx, id)
		if err != nil {
			// A replica without the trace is not a failed replica: only
			// transport-level unavailability should count against health.
			if api.AsError(err).Code == api.CodeUnavailable {
				return err
			}
			return nil
		}
		var payload obs.TracePayload
		if json.Unmarshal(raw, &payload) != nil {
			return nil
		}
		mu.Lock()
		spans = append(spans, payload.Spans...)
		mu.Unlock()
		return nil
	})
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start.Before(spans[b].Start) })
	if len(spans) == 0 {
		writeAPIError(w, api.Errorf(api.CodeNotFound, "shard: no trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, obs.TracePayload{TraceID: id, Spans: spans})
}

// handleDebugHistory scatter-gathers every live replica's /debug/history
// into one fleet-wide payload: the router's own series first, then each
// replica's series tagged with its replica ID. The incoming query string
// (series globs, since) is forwarded verbatim to the replicas.
func (rt *Router) handleDebugHistory(w http.ResponseWriter, r *http.Request) {
	var patterns []string
	if q := r.URL.Query().Get("series"); q != "" {
		for _, p := range strings.Split(q, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
	}
	since, _ := events.ParseSince(r.URL.Query().Get("since"), time.Now())
	out := tsdb.Payload{Tier: "shard",
		IntervalSeconds: rt.history.Interval().Seconds(),
		Series:          rt.history.Query(patterns, since)}
	if out.Series == nil {
		out.Series = []tsdb.Series{}
	}

	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	query := r.URL.RawQuery
	var mu sync.Mutex
	rt.scatter(func(rep *Replica) error {
		raw, err := rep.C.DebugHistoryJSON(ctx, query)
		if err != nil {
			if api.AsError(err).Code == api.CodeUnavailable {
				return err
			}
			return nil
		}
		var payload tsdb.Payload
		if json.Unmarshal(raw, &payload) != nil {
			return nil
		}
		mu.Lock()
		for _, s := range payload.Series {
			s.Replica = rep.ID
			out.Series = append(out.Series, s)
		}
		mu.Unlock()
		return nil
	})
	writeJSON(w, http.StatusOK, out)
}

// handleDebugEvents scatter-gathers every live replica's event journal
// and merges it with the router's own into one time-ordered payload; each
// replica event gains a "replica" attr naming its origin. The query
// string (limit, type, since) is forwarded verbatim.
func (rt *Router) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	limit := 256
	if s := r.URL.Query().Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit = n
		}
	}
	typ := events.Type(r.URL.Query().Get("type"))
	since, _ := events.ParseSince(r.URL.Query().Get("since"), time.Now())
	own := rt.journal.Events(limit, typ, since)
	dropped := rt.journal.Dropped()

	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	query := r.URL.RawQuery
	var mu sync.Mutex
	lists := [][]events.Event{own}
	rt.scatter(func(rep *Replica) error {
		raw, err := rep.C.DebugEventsJSON(ctx, query)
		if err != nil {
			if api.AsError(err).Code == api.CodeUnavailable {
				return err
			}
			return nil
		}
		var payload events.Payload
		if json.Unmarshal(raw, &payload) != nil {
			return nil
		}
		for i := range payload.Events {
			if payload.Events[i].Attrs == nil {
				payload.Events[i].Attrs = map[string]string{}
			}
			payload.Events[i].Attrs["replica"] = rep.ID
		}
		mu.Lock()
		lists = append(lists, payload.Events)
		dropped += payload.Dropped
		mu.Unlock()
		return nil
	})
	merged := events.Merge(lists...)
	if limit > 0 && len(merged) > limit {
		merged = merged[len(merged)-limit:]
	}
	if merged == nil {
		merged = []events.Event{}
	}
	writeJSON(w, http.StatusOK, events.Payload{Tier: "shard", Dropped: dropped, Events: merged})
}

// ---- shared helpers (mirrors internal/serve's envelope discipline) ----

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return api.Errorf(api.CodeInvalidArgument, "bad JSON: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

func writeAPIError(w http.ResponseWriter, err error) error {
	ae := api.AsError(err)
	if ae.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSeconds))
	}
	writeJSON(w, ae.Code.HTTPStatus(), api.ErrorEnvelope{Error: ae})
	return ae
}
