//sicklevet:file-ignore ologonly deliberate result summary, demonstrating the file escape hatch
package serve

import "fmt"

func summary() {
	fmt.Println("results")
	fmt.Printf("count=%d\n", 1)
}
