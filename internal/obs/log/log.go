// Package olog is the structured, leveled logger shared by the sickle
// binaries and the serve/shard request paths. Records are key-value
// pairs rendered either as logfmt-style text or as JSON objects, chosen
// at construction — the binaries wire this to -log-level / -log-json.
package olog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level orders log records by severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a -log-level flag value to a Level; unknown values
// default to info with ok=false.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, true
	case "info", "":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	default:
		return LevelInfo, false
	}
}

// Logger writes leveled key-value records. A nil *Logger discards
// everything, so components can hold one unconditionally. Methods are
// safe for concurrent use.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	json  bool
	bound []any // With()-bound key-value pairs, prepended to every record
	now   func() time.Time
}

// New builds a logger writing records at or above min to w; jsonOut
// selects JSON objects instead of logfmt text.
func New(w io.Writer, min Level, jsonOut bool) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, json: jsonOut, now: time.Now}
}

// Default returns a text logger to stderr at info level.
func Default() *Logger { return New(os.Stderr, LevelInfo, false) }

// With returns a child logger whose records carry the given key-value
// pairs ahead of per-call pairs (e.g. With("tier", "shard")).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.bound = append(append([]any{}, l.bound...), kv...)
	return &child
}

// Enabled reports whether records at lvl would be written.
func (l *Logger) Enabled(lvl Level) bool { return l != nil && lvl >= l.min }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	pairs := append(append([]any{}, l.bound...), kv...)
	ts := l.now().Format(time.RFC3339Nano)

	var line []byte
	if l.json {
		obj := map[string]any{"ts": ts, "level": lvl.String(), "msg": msg}
		for i := 0; i+1 < len(pairs); i += 2 {
			obj[fmt.Sprint(pairs[i])] = pairs[i+1]
		}
		if len(pairs)%2 == 1 {
			obj["_odd_key"] = fmt.Sprint(pairs[len(pairs)-1])
		}
		line = appendJSON(obj)
	} else {
		var b strings.Builder
		b.WriteString(ts)
		b.WriteByte(' ')
		b.WriteString(lvl.String())
		b.WriteByte(' ')
		b.WriteString(msg)
		for i := 0; i+1 < len(pairs); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fmt.Sprint(pairs[i]))
			b.WriteByte('=')
			b.WriteString(quoteIfNeeded(fmt.Sprint(pairs[i+1])))
		}
		if len(pairs)%2 == 1 {
			b.WriteString(" _odd_key=")
			b.WriteString(quoteIfNeeded(fmt.Sprint(pairs[len(pairs)-1])))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}

	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

// appendJSON marshals with deterministic key order (ts/level/msg first,
// then sorted) so log lines are stable for tests and grepping.
func appendJSON(obj map[string]any) []byte {
	keys := make([]string, 0, len(obj))
	for k := range obj {
		if k == "ts" || k == "level" || k == "msg" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(`{"ts":`)
	writeJSONVal(&b, obj["ts"])
	b.WriteString(`,"level":`)
	writeJSONVal(&b, obj["level"])
	b.WriteString(`,"msg":`)
	writeJSONVal(&b, obj["msg"])
	for _, k := range keys {
		b.WriteByte(',')
		writeJSONVal(&b, k)
		b.WriteByte(':')
		writeJSONVal(&b, obj[k])
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

func writeJSONVal(b *strings.Builder, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprint(v))
	}
	b.Write(enc)
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\n\"=") {
		enc, _ := json.Marshal(s)
		return string(enc)
	}
	return s
}
