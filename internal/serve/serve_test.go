package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/pkg/api"
)

// testSpec is a tiny LSTM: input [T=3, C=4] → output [2].
var testSpec = train.ArchSpec{Arch: "lstm", InDim: 4, Hidden: 8, OutDim: 2}

var testShape = []int{3, 4}

// newTestServer registers one checkpointed model under "m" and returns the
// server plus a reference replica for computing expected outputs.
func newTestServer(t *testing.T, cfg Config) (*Server, train.Model) {
	t.Helper()
	ref, err := testSpec.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "m.sknn")
	if err := nn.SaveCheckpoint(ckpt, ref); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.batcher.Stop() })
	if _, err := s.Registry().Register("m", testSpec, ckpt, testShape, 2); err != nil {
		t.Fatal(err)
	}
	return s, ref
}

func randomItem(rng *rand.Rand) api.InferItem {
	data := make([]float64, 3*4)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return api.InferItem{Shape: testShape, Data: data}
}

// expect runs the reference model unbatched (batch dimension 1).
func expect(ref train.Model, item api.InferItem) []float64 {
	in := tensor.FromSlice(append([]float64(nil), item.Data...), append([]int{1}, item.Shape...)...)
	out := ref.Forward(in)
	return append([]float64(nil), out.Data...)
}

// doInfer posts one inference request; safe to call from any goroutine.
func doInfer(url string, req api.InferRequest) (*api.InferResponse, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	var out api.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.StatusCode, err
	}
	return &out, resp.StatusCode, nil
}

// checkOutput compares a response item to the expected row bit for bit.
func checkOutput(got api.InferItem, want []float64) error {
	if len(got.Data) != len(want) {
		return fmt.Errorf("output len %d, want %d", len(got.Data), len(want))
	}
	for j := range want {
		if got.Data[j] != want[j] {
			return fmt.Errorf("output[%d] = %v, want %v", j, got.Data[j], want[j])
		}
	}
	return nil
}

// TestBatchedInferenceMatchesSingle is the core correctness property: many
// concurrent clients, whose requests coalesce into micro-batches, must each
// receive the output a lone unbatched request would have produced — bit for
// bit.
func TestBatchedInferenceMatchesSingle(t *testing.T) {
	// A generous window so the concurrent burst reliably coalesces.
	s, ref := newTestServer(t, Config{MaxBatch: 8, Window: 50 * time.Millisecond, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(3))
	const n = 24
	items := make([]api.InferItem, n)
	want := make([][]float64, n)
	for i := range items {
		items[i] = randomItem(rng)
		want[i] = expect(ref, items[i])
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, code, err := doInfer(ts.URL, api.InferRequest{Model: "m", Items: []api.InferItem{items[i]}})
			if err != nil || code != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d, err %v", code, err)
				return
			}
			if err := checkOutput(resp.Outputs[0], want[i]); err != nil {
				errs[i] = fmt.Errorf("%w (batch %d)", err, resp.BatchSizes[0])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if mean := s.Metrics().MeanBatchSize(); mean <= 1 {
		t.Errorf("mean batch size %.2f; micro-batching never engaged under %d concurrent clients", mean, n)
	}
}

// TestMultiItemRequest checks that one request carrying several items gets
// per-item outputs in order.
func TestMultiItemRequest(t *testing.T) {
	s, ref := newTestServer(t, Config{MaxBatch: 4, Window: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(5))
	items := []api.InferItem{randomItem(rng), randomItem(rng), randomItem(rng)}
	resp, code, err := doInfer(ts.URL, api.InferRequest{Model: "m", Items: items})
	if err != nil || code != http.StatusOK {
		t.Fatalf("HTTP %d, err %v", code, err)
	}
	if len(resp.Outputs) != len(items) {
		t.Fatalf("%d outputs for %d items", len(resp.Outputs), len(items))
	}
	for i, item := range items {
		if err := checkOutput(resp.Outputs[i], expect(ref, item)); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
}

// TestInferErrors exercises the failure paths: unknown model and malformed
// shapes must produce JSON errors, not hung requests or a crashed server.
func TestInferErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_ = s

	rng := rand.New(rand.NewSource(6))
	if _, code, err := doInfer(ts.URL, api.InferRequest{Model: "nope", Items: []api.InferItem{randomItem(rng)}}); err != nil || code == http.StatusOK {
		t.Fatalf("unknown model must fail (code %d, err %v)", code, err)
	}
	bad := api.InferItem{Shape: []int{2}, Data: []float64{1, 2, 3}}
	if _, code, err := doInfer(ts.URL, api.InferRequest{Model: "m", Items: []api.InferItem{bad}}); err != nil || code != http.StatusBadRequest {
		t.Fatalf("shape/data mismatch must be a 400 (code %d, err %v)", code, err)
	}
	// A well-formed item whose shape the model cannot consume: the forward
	// panic must come back as an error response.
	weird := api.InferItem{Shape: []int{7}, Data: make([]float64, 7)}
	if _, code, err := doInfer(ts.URL, api.InferRequest{Model: "m", Items: []api.InferItem{weird}}); err != nil || code == http.StatusOK {
		t.Fatalf("unconsumable shape must fail (code %d, err %v)", code, err)
	}
	// And the server must still answer afterwards.
	if _, code, err := doInfer(ts.URL, api.InferRequest{Model: "m", Items: []api.InferItem{randomItem(rng)}}); err != nil || code != http.StatusOK {
		t.Fatalf("server did not survive a failed forward pass (code %d, err %v)", code, err)
	}
}

// TestHotSwap registers a second version under the same name and checks new
// requests see it.
func TestHotSwap(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_ = s

	ref2, err := testSpec.Build(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	ckpt2 := filepath.Join(t.TempDir(), "m2.sknn")
	if err := nn.SaveCheckpoint(ckpt2, ref2); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(api.RegisterModelRequest{Name: "m", Spec: archToSpec(testSpec), Checkpoint: ckpt2, InputShape: testShape})
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot-swap HTTP %d", resp.StatusCode)
	}

	rng := rand.New(rand.NewSource(8))
	item := randomItem(rng)
	out, code, err := doInfer(ts.URL, api.InferRequest{Model: "m", Items: []api.InferItem{item}})
	if err != nil || code != http.StatusOK {
		t.Fatalf("HTTP %d, err %v", code, err)
	}
	if out.Version != 2 {
		t.Fatalf("served version %d after hot-swap, want 2", out.Version)
	}
	if err := checkOutput(out.Outputs[0], expect(ref2, item)); err != nil {
		t.Fatalf("output is not from the swapped weights: %v", err)
	}
}

// TestGracefulShutdownDrains starts a real listener, launches a burst of
// requests, waits until every one has been admitted, then shuts down under
// them: every admitted request must still receive its real (bit-correct)
// response.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ref := newTestServer(t, Config{MaxBatch: 4, Window: 20 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	rng := rand.New(rand.NewSource(11))
	const n = 16
	items := make([]api.InferItem, n)
	want := make([][]float64, n)
	for i := range items {
		items[i] = randomItem(rng)
		want[i] = expect(ref, items[i])
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, code, err := doInfer(url, api.InferRequest{Model: "m", Items: []api.InferItem{items[i]}})
			if err != nil || code != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d, err %v", code, err)
				return
			}
			errs[i] = checkOutput(resp.Outputs[0], want[i])
		}(i)
	}

	// Wait until all n requests have entered their handler (in-flight or
	// already finished); Shutdown then must drain, not drop, them.
	admitted := func() int64 {
		return int64(s.met.inflight.Value() + s.met.requests.With("/v1/infer").Value())
	}
	deadline := time.Now().Add(10 * time.Second)
	for admitted() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests admitted", admitted(), n)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestSubsampleCacheHit checks the LRU path end to end: the second
// identical /v1/subsample request must be served from cache.
func TestSubsampleCacheHit(t *testing.T) {
	s, _ := newTestServer(t, Config{CacheEntries: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	var first, second api.SubsampleResponse
	for i, out := range []*api.SubsampleResponse{&first, &second} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/subsample", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: HTTP %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if first.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	if !second.CacheHit {
		t.Fatal("second identical request must hit the dataset cache")
	}
	if first.Cubes != second.Cubes || first.Points != second.Points {
		t.Fatalf("cached run selected %d/%d, fresh run %d/%d",
			second.Cubes, second.Points, first.Cubes, first.Points)
	}
	hits, misses, _ := s.Cache().Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats %d hits / %d misses, want 1/1", hits, misses)
	}
	// /metrics must expose the hit.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sickle_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit counter:\n%s", buf.String())
	}
}

// TestHealthz sanity-checks the health endpoint shape.
func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_ = s
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Models) != 1 || h.Models[0] != "m@v1" {
		t.Fatalf("healthz = %+v", h)
	}
}
