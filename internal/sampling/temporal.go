package sampling

import (
	"repro/internal/grid"
	"repro/internal/stats"
)

// TemporalConfig controls snapshot-level selection (§4.3): snapshots whose
// input PDF adds no new information relative to the already-kept set are
// discarded — the cure for periodic trajectories (e.g. OF2D vortex
// shedding) oversampling the same phase.
type TemporalConfig struct {
	Var       string  // variable whose PDF measures novelty
	Bins      int     // histogram bins, default 100 (paper's setting)
	Threshold float64 // minimum JS divergence to keep a snapshot, default 0.01
	MaxKeep   int     // optional cap on kept snapshots (0 = no cap)
}

// SelectSnapshots returns the indices of snapshots to keep. The first
// snapshot is always kept; each subsequent snapshot is scored by the
// Jensen-Shannon divergence between its PDF and the running PDF of the
// kept set, and retained only if it exceeds the threshold.
func SelectSnapshots(d *grid.Dataset, cfg TemporalConfig) []int {
	if cfg.Bins <= 0 {
		cfg.Bins = 100
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.01
	}
	if cfg.Var == "" {
		cfg.Var = d.InputVars[0]
	}
	if len(d.Snapshots) == 0 {
		return nil
	}

	// Common support across all snapshots so PDFs are comparable.
	lo, hi := d.Snapshots[0].Var(cfg.Var)[0], d.Snapshots[0].Var(cfg.Var)[0]
	for _, f := range d.Snapshots {
		for _, x := range f.Var(cfg.Var) {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	pdf := func(f *grid.Field) []float64 {
		h := stats.NewHistogram(lo, hi+1e-9, cfg.Bins)
		h.AddAll(f.Var(cfg.Var))
		return h.PDF()
	}

	// Novelty is the distance to the NEAREST kept snapshot, not to a
	// running mean: for periodic trajectories every repeat of a phase is
	// close to some kept snapshot even though it is far from the mean, so
	// min-distance is what actually discards the repeats.
	kept := []int{0}
	keptPDFs := [][]float64{pdf(d.Snapshots[0])}
	for t := 1; t < len(d.Snapshots); t++ {
		p := pdf(d.Snapshots[t])
		minJS := stats.JensenShannon(p, keptPDFs[0])
		for _, q := range keptPDFs[1:] {
			if js := stats.JensenShannon(p, q); js < minJS {
				minJS = js
			}
		}
		if minJS >= cfg.Threshold {
			kept = append(kept, t)
			keptPDFs = append(keptPDFs, p)
			if cfg.MaxKeep > 0 && len(kept) >= cfg.MaxKeep {
				break
			}
		}
	}
	return kept
}
