package nn

import (
	"math"

	"repro/internal/tensor"
)

// MSELoss returns ½-free mean squared error L = mean((pred-target)²) and
// dL/dpred.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.New(pred.Shape...)
	return MSELossInto(grad, pred, target), grad
}

// MSELossInto writes dL/dpred into grad (which must match pred's length)
// and returns the loss. It exists so hot loops can route the gradient
// buffer through the tensor workspace (Get/Put) instead of allocating one
// per step.
func MSELossInto(grad, pred, target *tensor.Tensor) float64 {
	if pred.Len() != target.Len() || grad.Len() != pred.Len() {
		panic("nn: MSE length mismatch")
	}
	n := float64(pred.Len())
	loss := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with optional weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	step        int
	m, v        map[*Param][]float64
}

// NewAdam builds Adam with the paper's defaults (lr 0.001).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Step applies one update to all parameters of m using their accumulated
// gradients.
func (a *Adam) Step(mod Module) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range mod.Params() {
		mom, ok := a.m[p]
		if !ok {
			mom = make([]float64, p.W.Len())
			a.m[p] = mom
		}
		vel, ok := a.v[p]
		if !ok {
			vel = make([]float64, p.W.Len())
			a.v[p] = vel
		}
		// The per-element update is independent, so it fans out across the
		// kernel pool (bit-identical to the serial loop).
		w, grad := p.W.Data, p.Grad.Data
		tensor.DefaultPool().ParallelFor(len(w), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				g := grad[i]
				if a.WeightDecay > 0 {
					g += a.WeightDecay * w[i]
				}
				mom[i] = a.Beta1*mom[i] + (1-a.Beta1)*g
				vel[i] = a.Beta2*vel[i] + (1-a.Beta2)*g*g
				mh := mom[i] / bc1
				vh := vel[i] / bc2
				w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			}
		})
	}
}

// PlateauScheduler implements reduce-LR-on-plateau with the paper's
// training configuration (patience 20, factor 0.5 by default).
type PlateauScheduler struct {
	Opt      *Adam
	Patience int
	Factor   float64
	MinLR    float64
	best     float64
	bad      int
	started  bool
}

// NewPlateauScheduler wraps opt with plateau-based LR decay.
func NewPlateauScheduler(opt *Adam, patience int, factor float64) *PlateauScheduler {
	if patience <= 0 {
		patience = 20
	}
	if factor <= 0 || factor >= 1 {
		factor = 0.5
	}
	return &PlateauScheduler{Opt: opt, Patience: patience, Factor: factor, MinLR: 1e-6}
}

// Observe records an epoch's validation loss, decaying the LR when no
// improvement has been seen for Patience epochs. It returns the current LR.
func (s *PlateauScheduler) Observe(loss float64) float64 {
	if !s.started || loss < s.best {
		s.best = loss
		s.bad = 0
		s.started = true
		return s.Opt.LR
	}
	s.bad++
	if s.bad >= s.Patience {
		s.bad = 0
		s.Opt.LR *= s.Factor
		if s.Opt.LR < s.MinLR {
			s.Opt.LR = s.MinLR
		}
	}
	return s.Opt.LR
}
