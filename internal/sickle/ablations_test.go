package sickle

import "testing"

func TestAblateClusterCount(t *testing.T) {
	rows, err := AblateClusterCount(Small, []int{2, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Enough clusters must beat the degenerate 2-cluster case on tails.
	if rows[1].TailCover <= rows[0].TailCover {
		t.Fatalf("k=10 tail coverage %v should exceed k=2's %v",
			rows[1].TailCover, rows[0].TailCover)
	}
	for _, r := range rows {
		if r.TailCover <= 0 {
			t.Fatalf("k=%v: empty tails", r.Value)
		}
	}
}

func TestAblateUIPSBins(t *testing.T) {
	rows, err := AblateUIPSBins(Small, []int{4, 20, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// More bins flatten the 1-D PDF harder: tail coverage grows.
	if !(rows[2].TailCover > rows[0].TailCover) {
		t.Fatalf("100-bin tails %v should exceed 4-bin %v",
			rows[2].TailCover, rows[0].TailCover)
	}
}

func TestAblateCubeSize(t *testing.T) {
	rows, err := AblateCubeSize(Small, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Work units decrease monotonically with cube edge.
	for i := 1; i < len(rows); i++ {
		if rows[i].TailCover >= rows[i-1].TailCover {
			t.Fatalf("cube count must shrink with edge: %v", rows)
		}
	}
}

func TestAblateCommLatency(t *testing.T) {
	rows, err := AblateCommLatency(t.Context(), Small, []float64{2e-6, 200e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Higher latency cannot increase the knee rank.
	if rows[1].TailCover > rows[0].TailCover {
		t.Fatalf("knee grew with latency: %v -> %v", rows[0].TailCover, rows[1].TailCover)
	}
}

func TestTemporalSelectionOnOF2D(t *testing.T) {
	kept, total, err := TemporalSelectionSummary(Small, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if kept <= 0 || kept > total {
		t.Fatalf("kept %d of %d", kept, total)
	}
	// The shedding trajectory is periodic: most snapshots are redundant.
	if kept > total/2 {
		t.Fatalf("temporal selection kept %d/%d periodic snapshots", kept, total)
	}
}
