// Quickstart: generate a synthetic turbulence snapshot, subsample it with
// every registered method at a 10% rate, and compare how each method covers
// the enstrophy distribution — the 60-second tour of SICKLE-Go's sampling
// API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	// 1. A 32³ isotropic turbulence snapshot (GESTS-like analogue).
	field := synth.Isotropic(synth.IsotropicConfig{N: 32, Seed: 42})
	fmt.Printf("generated %d×%d×%d snapshot with variables %v\n",
		field.Nx, field.Ny, field.Nz, field.VarNames())

	// 2. Wrap it as a sampling view: features are the model inputs,
	//    the cluster variable drives the entropy-based methods.
	data := &sampling.Data{
		Features:   field.Points([]string{"u", "v", "w", "dissipation"}, nil),
		ClusterVar: field.Var("enstrophy"),
	}
	n := data.N() / 10
	full := append([]float64(nil), field.Var("enstrophy")...)

	// 3. Run every registered sampler and compare tail coverage of the
	//    enstrophy PDF (1.0 = tails represented proportionally).
	fmt.Printf("\n%-12s %8s %12s\n", "method", "samples", "tailCover")
	for _, name := range sampling.MethodNames() {
		if name == "full" {
			continue
		}
		s, err := sampling.NewPointSampler(name, 10, nil)
		if err != nil {
			log.Fatal(err)
		}
		idx := s.SelectPoints(data, n, rand.New(rand.NewSource(1)))
		vals := make([]float64, len(idx))
		for r, i := range idx {
			vals[r] = full[i]
		}
		fmt.Printf("%-12s %8d %12.3f\n", name, len(idx), stats.TailCoverage(full, vals, 0.02))
	}
	fmt.Println("\nMaxEnt and stratified sampling over-represent the rare high-enstrophy")
	fmt.Println("tail (coverage > 1); random matches the bulk PDF (coverage ≈ 1); UIPS")
	fmt.Println("flattens the joint *feature* PDF, which on isotropic data does not")
	fmt.Println("target the enstrophy tail — the isotropic regime where the paper found")
	fmt.Println("little difference between methods (§7).")
}
