package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdxCoordsRoundTrip(t *testing.T) {
	f := NewField(5, 7, 3)
	for k := 0; k < 3; k++ {
		for j := 0; j < 7; j++ {
			for i := 0; i < 5; i++ {
				idx := f.Idx(i, j, k)
				gi, gj, gk := f.Coords(idx)
				if gi != i || gj != j || gk != k {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", i, j, k, idx, gi, gj, gk)
				}
			}
		}
	}
}

func TestAddVarAndPoint(t *testing.T) {
	f := NewField(2, 2, 1)
	f.AddVar("u", []float64{1, 2, 3, 4})
	f.AddVar("v", []float64{10, 20, 30, 40})
	dst := make([]float64, 2)
	f.Point(3, []string{"u", "v"}, dst)
	if dst[0] != 4 || dst[1] != 40 {
		t.Fatalf("Point = %v", dst)
	}
	pts := f.Points([]string{"v", "u"}, []int{0, 2})
	if pts[0][0] != 10 || pts[1][1] != 3 {
		t.Fatalf("Points = %v", pts)
	}
}

func TestVarPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewField(1, 1, 1).Var("nope")
}

// TestVorticitySolidBodyRotation: u = -y, v = x gives ω_z = 2 everywhere.
func TestVorticitySolidBodyRotation(t *testing.T) {
	n := 16
	f := NewField(n, n, 1)
	u := f.AddVar("u", nil)
	v := f.AddVar("v", nil)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			u[f.Idx(i, j, 0)] = -float64(j)
			v[f.Idx(i, j, 0)] = float64(i)
		}
	}
	wz := f.ComputeVorticityZ()
	// Check interior points (periodic wrap corrupts the boundary ring for
	// this non-periodic test function).
	for j := 2; j < n-2; j++ {
		for i := 2; i < n-2; i++ {
			if math.Abs(wz[f.Idx(i, j, 0)]-2) > 1e-12 {
				t.Fatalf("wz(%d,%d) = %v, want 2", i, j, wz[f.Idx(i, j, 0)])
			}
		}
	}
}

// TestEnstrophyPeriodicShear: u = sin(2πy/N) on a periodic grid. Vorticity
// ω_z = -du/dy, enstrophy = ½ω². Verified against the analytic derivative
// sampled with central differences.
func TestEnstrophyPeriodicShear(t *testing.T) {
	n := 32
	f := NewField(n, n, n)
	u := f.AddVar("u", nil)
	f.AddVar("v", nil)
	f.AddVar("w", nil)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				u[f.Idx(i, j, k)] = math.Sin(2 * math.Pi * float64(j) / float64(n))
			}
		}
	}
	ens := f.ComputeEnstrophy()
	// Central difference of sin at grid resolution: dudy = cos(2πy/N)·sin(2πh)/h·(1/2h)...
	// easier: compare against the same stencil applied analytically.
	h := 1.0
	for j := 0; j < n; j++ {
		y := float64(j)
		dudy := (math.Sin(2*math.Pi*(y+h)/float64(n)) - math.Sin(2*math.Pi*(y-h)/float64(n))) / (2 * h)
		want := 0.5 * dudy * dudy
		got := ens[f.Idx(5, j, 7)]
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("enstrophy(j=%d) = %v, want %v", j, got, want)
		}
	}
}

// TestDissipationUniformFlow: constant velocity has zero dissipation.
func TestDissipationUniformFlow(t *testing.T) {
	f := NewField(8, 8, 8)
	u := f.AddVar("u", nil)
	f.AddVar("v", nil)
	f.AddVar("w", nil)
	for i := range u {
		u[i] = 3.7
	}
	eps := f.ComputeDissipation(1e-3)
	for i, e := range eps {
		if e != 0 {
			t.Fatalf("dissipation[%d] = %v, want 0", i, e)
		}
	}
}

// TestPotentialVorticityZeroWhenDensityUniform: q = ω·∇ρ = 0 if ρ constant.
func TestPotentialVorticityZeroWhenDensityUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewField(8, 8, 8)
	u := f.AddVar("u", nil)
	v := f.AddVar("v", nil)
	w := f.AddVar("w", nil)
	r := f.AddVar("r", nil)
	for i := range u {
		u[i], v[i], w[i] = rng.Float64(), rng.Float64(), rng.Float64()
		r[i] = 2.5
	}
	pv := f.ComputePotentialVorticity()
	for i, q := range pv {
		if q != 0 {
			t.Fatalf("pv[%d] = %v, want 0", i, q)
		}
	}
}

func TestTileCoversDomainExactly(t *testing.T) {
	f := NewField(64, 32, 32)
	cubes := Tile(f, 32, 32, 32)
	if len(cubes) != 2 {
		t.Fatalf("got %d cubes, want 2", len(cubes))
	}
	seen := map[int]bool{}
	for _, c := range cubes {
		for _, idx := range c.Indices(f) {
			if seen[idx] {
				t.Fatalf("index %d covered twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != f.NPoints() {
		t.Fatalf("covered %d points, want %d", len(seen), f.NPoints())
	}
}

func TestTileDropsPartialEdges(t *testing.T) {
	f := NewField(70, 32, 32) // 70 = 2*32 + 6 -> partial cube dropped
	cubes := Tile(f, 32, 32, 32)
	if len(cubes) != 2 {
		t.Fatalf("got %d cubes, want 2 (partial edge dropped)", len(cubes))
	}
}

func TestTile2DForcesSz1(t *testing.T) {
	f := NewField(64, 64, 1)
	cubes := Tile(f, 32, 32, 32)
	if len(cubes) != 4 {
		t.Fatalf("2-D tiling got %d cubes, want 4", len(cubes))
	}
	for _, c := range cubes {
		if c.Sz != 1 {
			t.Fatalf("2-D cube has Sz=%d", c.Sz)
		}
	}
}

func TestExtractPreservesValues(t *testing.T) {
	f := NewField(8, 8, 8)
	u := f.AddVar("u", nil)
	for i := range u {
		u[i] = float64(i)
	}
	h := Hypercube{I0: 2, J0: 3, K0: 4, Sx: 3, Sy: 2, Sz: 2}
	sub := h.Extract(f, []string{"u"})
	if sub.NPoints() != 12 {
		t.Fatalf("extract has %d points", sub.NPoints())
	}
	// Corner check: sub(0,0,0) == f(2,3,4).
	if sub.Var("u")[0] != u[f.Idx(2, 3, 4)] {
		t.Fatal("extract corner mismatch")
	}
	if sub.Var("u")[sub.Idx(2, 1, 1)] != u[f.Idx(4, 4, 5)] {
		t.Fatal("extract interior mismatch")
	}
	vv := h.VarValues(f, "u")
	for i, x := range sub.Var("u") {
		if vv[i] != x {
			t.Fatal("VarValues disagrees with Extract")
		}
	}
}

// Property: tiling any grid with any cube size covers each covered point
// exactly once and never exceeds bounds.
func TestTilePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 4+rng.Intn(20), 4+rng.Intn(20), 1+rng.Intn(12)
		sx, sy, sz := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(4)
		fld := NewField(nx, ny, nz)
		cubes := Tile(fld, sx, sy, sz)
		want := (nx / sx) * (ny / sy)
		if nz == 1 {
			// 2-D forces sz=1
		} else {
			want *= nz / sz
		}
		if len(cubes) != want {
			return false
		}
		seen := map[int]bool{}
		for _, c := range cubes {
			for _, idx := range c.Indices(fld) {
				if idx < 0 || idx >= fld.NPoints() || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetValidate(t *testing.T) {
	f1 := NewField(4, 4, 1)
	f1.AddVar("u", nil)
	f1.AddVar("p", nil)
	d := &Dataset{Label: "X", Snapshots: []*Field{f1}, InputVars: []string{"u"}, OutputVars: []string{"p"}}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	d.ClusterVar = "missing"
	if err := d.Validate(); err == nil {
		t.Fatal("missing cluster var not detected")
	}
	d.ClusterVar = ""
	f2 := NewField(5, 4, 1)
	f2.AddVar("u", nil)
	f2.AddVar("p", nil)
	d.Snapshots = append(d.Snapshots, f2)
	if err := d.Validate(); err == nil {
		t.Fatal("dimension mismatch not detected")
	}
	if (&Dataset{Label: "empty"}).Validate() == nil {
		t.Fatal("empty dataset not detected")
	}
}

func TestDatasetStrings(t *testing.T) {
	f := NewField(512, 512, 256)
	f.AddVar("u", nil)
	d := &Dataset{Label: "SST", Snapshots: []*Field{f}}
	if d.GridString() != "512×512×256" {
		t.Fatalf("GridString = %q", d.GridString())
	}
	if d.SizeBytes() != int64(512*512*256*8) {
		t.Fatalf("SizeBytes = %d", d.SizeBytes())
	}
}
