package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text exposition (version 0.0.4)
// line by line and returns one error per violation. It enforces the
// conventions this repo's exporters promise:
//
//   - every sample line parses (name, optional label block, float value)
//   - every family with samples has # HELP and # TYPE lines, and the TYPE
//     is a known one
//   - counter family names end in _total
//   - histogram families expose _count, _sum, and a terminal +Inf bucket
//     whose cumulative count equals _count
//
// Tests run it against the in-process handlers; the CI smoke step runs it
// (via `sickle-bench -lintmetrics`) against a live server's /metrics.
func LintExposition(text string) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		typ      string
		help     bool
		samples  int
		sum      bool
		count    float64
		hasCount bool
		infCount float64
		hasInf   bool
	}
	fams := map[string]*famState{}
	fam := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{}
			fams[name] = f
		}
		return f
	}

	for i, line := range strings.Split(text, "\n") {
		n := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			// EXEMPLAR lines are not part of text format 0.0.4; this repo
			// keeps exemplars out of /metrics (they live in the
			// /debug/history JSON), but if a future exporter emits them we
			// validate the metric name and otherwise ignore the line rather
			// than failing the whole exposition.
			if len(fields) >= 3 && fields[1] == "EXEMPLAR" {
				if !validMetricName(fields[2]) {
					fail(n, "invalid metric name %q in EXEMPLAR line", fields[2])
				}
				continue
			}
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				fail(n, "malformed comment line %q", line)
				continue
			}
			if !validMetricName(fields[2]) {
				fail(n, "invalid metric name %q in %s line", fields[2], fields[1])
				continue
			}
			f := fam(fields[2])
			if fields[1] == "HELP" {
				f.help = true
				continue
			}
			if len(fields) != 4 {
				fail(n, "TYPE line missing type: %q", line)
				continue
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
				f.typ = fields[3]
			default:
				fail(n, "unknown TYPE %q for %s", fields[3], fields[2])
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base, suffix = trimmed, s
				}
				break
			}
		}
		f, ok := fams[base]
		if !ok || f.typ == "" {
			fail(n, "sample %s has no preceding # TYPE line", name)
			continue
		}
		if !f.help {
			fail(n, "sample %s has no preceding # HELP line", name)
		}
		f.samples++
		switch suffix {
		case "_sum":
			f.sum = true
		case "_count":
			f.hasCount, f.count = true, value
		case "_bucket":
			if labels["le"] == "" {
				fail(n, "histogram bucket %s missing le label", name)
			}
			if labels["le"] == "+Inf" {
				f.hasInf, f.infCount = true, value
			}
		case "":
			if f.typ == "histogram" {
				fail(n, "bare sample %s for histogram family", name)
			}
			if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
				fail(n, "counter %s does not end in _total", name)
			}
			if value < 0 && f.typ == "counter" {
				fail(n, "counter %s has negative value %g", name, value)
			}
		}
	}

	for name, f := range fams {
		if f.typ != "histogram" || f.samples == 0 {
			continue
		}
		if !f.sum {
			errs = append(errs, fmt.Errorf("histogram %s has no _sum sample", name))
		}
		if !f.hasCount {
			errs = append(errs, fmt.Errorf("histogram %s has no _count sample", name))
		}
		if !f.hasInf {
			errs = append(errs, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", name))
		} else if f.hasCount && f.infCount != f.count {
			errs = append(errs, fmt.Errorf("histogram %s: +Inf bucket %g != _count %g",
				name, f.infCount, f.count))
		}
	}
	return errs
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func validMetricName(s string) bool { return metricNameRe.MatchString(s) }

// parseSample decodes `name{k="v",...} value` (label block optional).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
	}
	// Drop an optional timestamp field.
	if sp := strings.IndexByte(valStr, ' '); sp >= 0 {
		valStr = valStr[:sp]
	}
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", valStr, line)
	}
	return name, labels, value, nil
}

// parseLabels decodes the inside of a {k="v",...} block.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '='")
		}
		key := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", s[i], key)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}
