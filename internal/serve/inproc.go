package serve

import (
	"context"
	"net"
)

// InProc is a Server running on its own loopback listener inside the
// current process — the spawnable replica handle used by shard-router
// tests, `sickle-shard -demo`, and anything else that needs a real HTTP
// backend without forking a process.
type InProc struct {
	Server *Server
	URL    string // http://host:port base URL, dialable once StartInProc returns

	l    net.Listener
	done chan error
}

// StartInProc builds a server from cfg and serves it in a background
// goroutine. An empty cfg.Addr picks an ephemeral loopback port
// (127.0.0.1:0); pass a concrete address to respawn a replica in place
// (the failover tests re-admit a killed backend this way).
func StartInProc(cfg Config) (*InProc, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.jobs.Close()
		s.batcher.Stop()
		s.history.Stop()
		s.durable.Close()
		return nil, err
	}
	p := &InProc{
		Server: s,
		URL:    "http://" + l.Addr().String(),
		l:      l,
		done:   make(chan error, 1),
	}
	go func() { p.done <- s.Serve(l) }()
	return p, nil
}

// Addr returns the concrete listen address (host:port).
func (p *InProc) Addr() string { return p.l.Addr().String() }

// Close drains gracefully (Server.Shutdown) and waits for the serve loop
// to exit.
func (p *InProc) Close(ctx context.Context) error {
	err := p.Server.Shutdown(ctx)
	if serveErr := <-p.done; err == nil {
		err = serveErr
	}
	return err
}

// Kill stops the replica abruptly — the listener and every active
// connection are closed without draining, simulating a crashed backend.
// The WAL is frozen *first*: a real crash writes nothing more to disk,
// so the job-manager teardown below (which cancels runners and would
// otherwise record their cancellations) must leave no trace either —
// restart-on-the-same-data-dir tests then see exactly the on-disk state
// of a process that died at this instant. The batcher and job manager
// are still torn down so tests leak no goroutines.
func (p *InProc) Kill() {
	p.Server.durable.Freeze()
	p.Server.httpSrv.Close()
	<-p.done
	p.Server.jobs.Close()
	p.Server.batcher.Stop()
	p.Server.history.Stop()
	p.Server.durable.Close()
}
