// Package apierr enforces the pkg/api error contract (PR 4): every
// failure that crosses the HTTP boundary is a typed *api.Error carrying a
// code from the registered code↔status table, so clients can branch on
// Code and the envelope renderer can map it to a status. A naked
// fmt.Errorf born inside a handler reaches the wire as a generic 500
// with an unclassifiable message.
//
// Two rules:
//
//  1. Inside HTTP handler functions — any function or closure whose
//     parameters include http.ResponseWriter or *http.Request — errors
//     must not be constructed with fmt.Errorf or errors.New; use
//     api.Errorf with a registered code. fmt.Errorf calls that do not
//     wrap (%w) carry a suggested fix rewriting them to
//     api.Errorf(api.CodeInternal, ...).
//
//  2. Everywhere outside pkg/api itself, an api.ErrorCode may only be
//     named via its registered constants: a string literal converted or
//     assigned to ErrorCode whose value is not in the registered table
//     (the exported CodeXxx constants) bypasses the code↔status mapping.
package apierr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the apierr pass.
var Analyzer = &analysis.Analyzer{
	Name: "apierr",
	Doc:  "errors crossing the pkg/api boundary must be typed *api.Error values with registered codes",
	Run:  run,
}

const apiPathSuffix = "pkg/api"

func run(pass *analysis.Pass) (any, error) {
	inAPI := analysis.PathHasSuffix(pass.PkgPath(), apiPathSuffix)
	// Literals already validated through the explicit-conversion case;
	// ast.Inspect visits the parent CallExpr first, and the conversion
	// records the converted type on the literal too, which would report
	// the same literal twice.
	converted := map[*ast.BasicLit]bool{}
	for _, file := range pass.Files {
		apiName, apiImported := apiImportName(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && isHandlerSignature(pass, n.Type) {
					checkHandlerBody(pass, n.Body, apiName, apiImported)
					return false
				}
			case *ast.FuncLit:
				if isHandlerSignature(pass, n.Type) {
					checkHandlerBody(pass, n.Body, apiName, apiImported)
					return false
				}
			case *ast.CallExpr:
				// Explicit conversion form: api.ErrorCode("...").
				if !inAPI && len(n.Args) == 1 {
					if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
						if lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit); ok {
							converted[lit] = true
							checkCodeValue(pass, lit, tv.Type)
						}
					}
				}
			case *ast.BasicLit:
				if !inAPI && !converted[n] {
					checkCodeLiteral(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isHandlerSignature reports whether the function's parameters include
// net/http's ResponseWriter or *Request.
func isHandlerSignature(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		if analysis.NamedTypePath(t, "net/http", "Request") {
			return true
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// checkHandlerBody flags untyped error construction inside a handler.
// Nested non-handler closures are still handler code — they run on the
// request path — so the whole body is walked.
func checkHandlerBody(pass *analysis.Pass, body *ast.BlockStmt, apiName string, apiImported bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		switch {
		case analysis.IsFuncNamed(fn, "fmt", "Errorf"):
			d := analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "fmt.Errorf in an HTTP handler reaches the wire untyped; " +
					"use " + apiName + ".Errorf with a registered code",
			}
			if apiImported && !wraps(pass, call) {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: "rewrite to " + apiName + ".Errorf(" + apiName + ".CodeInternal, ...)",
					TextEdits: []analysis.TextEdit{{
						Pos:     call.Fun.Pos(),
						End:     call.Lparen + 1,
						NewText: []byte(apiName + ".Errorf(" + apiName + ".CodeInternal, "),
					}},
				}}
			}
			pass.Report(d)
		case analysis.IsFuncNamed(fn, "errors", "New"):
			pass.Reportf(call.Pos(),
				"errors.New in an HTTP handler reaches the wire untyped; use %s.Errorf with a registered code", apiName)
		}
		return true
	})
}

// wraps reports whether the fmt.Errorf format literal uses %w (the fix
// must not change wrapping semantics).
func wraps(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true // non-literal format: stay conservative
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

// checkCodeLiteral flags string literals implicitly typed as
// api.ErrorCode (assignments, composite literal fields, comparisons)
// whose value is not a registered code constant.
func checkCodeLiteral(pass *analysis.Pass, lit *ast.BasicLit) {
	if lit.Kind != token.STRING {
		return
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	checkCodeValue(pass, lit, tv.Type)
}

// checkCodeValue validates one string literal against the registered
// ErrorCode table when typ is pkg/api's ErrorCode.
func checkCodeValue(pass *analysis.Pass, lit *ast.BasicLit, typ types.Type) {
	named, ok := typ.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "ErrorCode" || obj.Pkg() == nil || !analysis.PathHasSuffix(obj.Pkg().Path(), apiPathSuffix) {
		return
	}
	value, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	// "" is the unset sentinel (an envelope with no code), not a wire
	// code; comparisons against it are legitimate.
	if value == "" || registeredCodes(obj.Pkg())[value] {
		return
	}
	pass.Reportf(lit.Pos(),
		"%q is not a registered api.ErrorCode; use one of the exported Code constants so the code↔status table stays total", value)
}

// registeredCodes enumerates the exported ErrorCode constants of the api
// package — the single source of truth for the wire code table.
func registeredCodes(apiPkg *types.Package) map[string]bool {
	codes := map[string]bool{}
	scope := apiPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == "ErrorCode" {
			codes[constant.StringVal(c.Val())] = true
		}
	}
	return codes
}

// apiImportName returns the file's local name for the repro/pkg/api
// import ("api" unless renamed) and whether it is imported at all.
func apiImportName(file *ast.File) (string, bool) {
	for _, imp := range file.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if analysis.PathHasSuffix(path, apiPathSuffix) {
			if imp.Name != nil {
				return imp.Name.Name, true
			}
			return "api", true
		}
	}
	return "api", false
}
