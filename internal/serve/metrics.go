package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// batchSizeBuckets are the upper bounds of the micro-batch size histogram.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Metrics is the service's instrumentation, backed by the shared
// obs.Registry: per-route request counters and latency histograms, the
// micro-batch size histogram, queue depth, job states, and cache counters.
// The registry renders Prometheus text exposition (with # HELP/# TYPE and
// le-bucketed histograms) so any scraper — or the load generator in
// cmd/sickle-bench — can consume it. All pre-registry series names are
// preserved; sickle_request_seconds_sum{route} is now the _sum series of
// the sickle_request_seconds histogram.
type Metrics struct {
	reg *obs.Registry

	requests *obs.CounterVec
	errors   *obs.CounterVec
	seconds  *obs.HistogramVec
	batch    *obs.Histogram
	inflight *obs.Gauge
	rejected *obs.Counter

	mu         sync.Mutex
	cacheBound bool
}

// NewMetrics returns a collector over a fresh registry, with the process
// runtime gauges (goroutines, heap, GC, tensor pool, build info) attached.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.Counter("sickle_requests_total",
			"Requests served, by route.", "route"),
		errors: reg.Counter("sickle_request_errors_total",
			"Requests that returned an error, by route.", "route"),
		seconds: reg.Histogram("sickle_request_seconds",
			"Request latency in seconds, by route.", nil, "route"),
		batch: reg.Histogram("sickle_batch_size",
			"Size of dispatched micro-batches.", batchSizeBuckets).With(),
		inflight: reg.Gauge("sickle_inflight_requests",
			"Requests currently being handled.").With(),
		rejected: reg.Counter("sickle_rejected_requests_total",
			"Requests refused at admission because a bounded queue was full.").With(),
	}
	obs.RegisterRuntime(reg)
	return m
}

// Registry exposes the underlying registry so the server can mount extra
// probes (and the debug mux can share /metrics).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ObserveRequest records one request on a route.
func (m *Metrics) ObserveRequest(route string, d time.Duration, failed bool) {
	m.ObserveRequestEx(route, d, failed, "")
}

// ObserveRequestEx is ObserveRequest carrying the request's trace ID as a
// latency-histogram exemplar (surfaced in /debug/history, not /metrics).
func (m *Metrics) ObserveRequestEx(route string, d time.Duration, failed bool, traceID string) {
	m.requests.With(route).Inc()
	m.seconds.With(route).ObserveEx(d.Seconds(), traceID)
	if failed {
		m.errors.With(route).Inc()
	}
}

// ObserveBatch records one dispatched micro-batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.batch.Observe(float64(size))
}

// MeanBatchSize returns the average size of dispatched batches (0 if none).
func (m *Metrics) MeanBatchSize() float64 {
	if n := m.batch.Count(); n > 0 {
		return m.batch.Sum() / float64(n)
	}
	return 0
}

// AddInflight adjusts the in-flight request gauge.
func (m *Metrics) AddInflight(d int64) {
	m.inflight.Add(float64(d))
}

// ObserveRejected counts one request rejected for backpressure.
func (m *Metrics) ObserveRejected() {
	m.rejected.Inc()
}

// RejectedTotal returns the cumulative backpressure rejections.
func (m *Metrics) RejectedTotal() int64 {
	return int64(m.rejected.Value())
}

// SetQueueDepthFunc installs the live queue-depth probe.
func (m *Metrics) SetQueueDepthFunc(f func() int) {
	m.reg.GaugeFunc("sickle_queue_depth",
		"Aggregate depth of the per-model batch queues.",
		func() float64 { return float64(f()) })
}

// SetJobStatsFunc installs the live job-state counter probe.
func (m *Metrics) SetJobStatsFunc(f func() map[string]int) {
	m.reg.GaugeMapFunc("sickle_jobs",
		"Jobs by lifecycle state.", "state",
		func() map[string]float64 {
			out := map[string]float64{}
			for state, n := range f() {
				out[state] = float64(n)
			}
			return out
		})
}

// Render writes the Prometheus text exposition. cache may be nil; the
// first non-nil cache binds the sickle_cache_* probes.
func (m *Metrics) Render(cache *LRU) string {
	if cache != nil {
		m.mu.Lock()
		if !m.cacheBound {
			m.cacheBound = true
			m.reg.CounterFunc("sickle_cache_hits_total",
				"Inference cache hits.",
				func() float64 { h, _, _ := cache.Stats(); return float64(h) })
			m.reg.CounterFunc("sickle_cache_misses_total",
				"Inference cache misses.",
				func() float64 { _, mi, _ := cache.Stats(); return float64(mi) })
			m.reg.CounterFunc("sickle_cache_evictions_total",
				"Inference cache evictions.",
				func() float64 { _, _, e := cache.Stats(); return float64(e) })
			m.reg.GaugeFunc("sickle_cache_entries",
				"Entries currently resident in the inference cache.",
				func() float64 { return float64(cache.Len()) })
		}
		m.mu.Unlock()
	}
	return m.reg.Render()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
