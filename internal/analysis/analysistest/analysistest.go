// Package analysistest runs a sicklevet analyzer over golden test
// packages, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Test packages live under <analyzer>/testdata/src/<importpath>/ and the
// directory path below src/ becomes the package's import path, so
// path-scoped analyzers can be exercised by mirroring real layouts
// (e.g. testdata/src/repro/internal/serve). Files may import standard
// library packages and the real repro/... packages; imports are resolved
// through `go list -export` at the module root.
//
// Expected findings are declared in the source with trailing comments:
//
//	f.Close() // want `Close error discarded`
//
// Each backquoted or double-quoted Go string after `want` is a regular
// expression; the line must produce exactly that many diagnostics, each
// matching its expression (order-insensitively). Lines without a want
// comment must produce none. //sicklevet:ignore directives are honored,
// so suppression behavior is testable by annotating a violation and
// omitting the want.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run analyzes the package at testdata/src/<pkgpath> (relative to the
// calling test's directory) and checks diagnostics against want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	run(t, a, pkgpath, false)
}

// RunWithSuggestedFixes is Run plus golden-file checking: after the
// diagnostics match, every suggested fix is applied and each fixed file
// is compared against <file>.golden.
func RunWithSuggestedFixes(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	run(t, a, pkgpath, true)
}

func run(t *testing.T, a *analysis.Analyzer, pkgpath string, fixes bool) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata package: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var filenames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
		filenames = append(filenames, name)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files under %s", dir)
	}

	pkg, info := typecheck(t, fset, files, pkgpath)
	var found []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { found = append(found, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	ignores := analysis.ParseIgnores(fset, files)
	for _, m := range ignores.Malformed {
		t.Errorf("%s: %s", fset.Position(m.Pos), m.Message)
	}
	kept := ignores.Filter(fset, a.Name, found)
	checkWants(t, fset, files, kept)
	if fixes {
		checkFixes(t, fset, filenames, kept)
	}
}

// typecheck resolves imports through `go list -export` at the module root
// and type-checks the testdata package.
func typecheck(t *testing.T, fset *token.FileSet, files []*ast.File, pkgpath string) (*types.Package, *types.Info) {
	t.Helper()
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exportFor := map[string]string{}
	if len(imports) > 0 {
		root := moduleRoot(t)
		pkgs, err := load.List(root, imports)
		if err != nil {
			t.Fatalf("resolving testdata imports: %v", err)
		}
		for _, p := range pkgs {
			exportFor[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFor[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg, info
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// expectation is one want regex at a line.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range parseWantPatterns(t, pos, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, exp.rx)
			}
		}
	}
}

// parseWantPatterns splits `"rx" "rx2"` / backquoted forms into patterns.
func parseWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment (expected quoted regexp): %s", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern: %s", pos, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}

// checkFixes applies every suggested fix and diffs against .golden files.
func checkFixes(t *testing.T, fset *token.FileSet, filenames []string, diags []analysis.Diagnostic) {
	t.Helper()
	type edit struct {
		start, end int
		text       []byte
	}
	editsByFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = fset.Position(te.End)
				}
				editsByFile[start.Filename] = append(editsByFile[start.Filename],
					edit{start: start.Offset, end: end.Offset, text: te.NewText})
			}
		}
	}
	for _, name := range filenames {
		golden := name + ".golden"
		goldenContent, err := os.ReadFile(golden)
		edits := editsByFile[name]
		if os.IsNotExist(err) {
			if len(edits) > 0 {
				t.Errorf("%s: analyzer suggested fixes but %s does not exist", name, golden)
			}
			continue
		} else if err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		fixed := src
		for _, e := range edits {
			if e.start < 0 || e.end > len(fixed) || e.start > e.end {
				t.Fatalf("%s: suggested fix edit out of range [%d,%d)", name, e.start, e.end)
			}
			fixed = append(fixed[:e.start:e.start], append(append([]byte{}, e.text...), fixed[e.end:]...)...)
		}
		if !bytes.Equal(fixed, goldenContent) {
			t.Errorf("%s: fixed output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
				name, golden, fixed, goldenContent)
		}
	}
}
