package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/api"
)

// JobRunner executes one job's work. It must honor ctx (the job manager
// cancels it on DELETE /v2/jobs/{id} and on server shutdown) and may call
// progress at any cadence; progress is cheap and safe from any goroutine.
type JobRunner func(ctx context.Context, progress func(stage string, done, total int)) (*api.JobResult, error)

// JobManager owns the server's asynchronous work: submissions enter a
// bounded admission set, at most `workers` jobs run concurrently (each
// under its own cancellable context), and terminal jobs linger for `ttl`
// so clients can fetch status/results before the record expires.
type JobManager struct {
	mu   sync.Mutex
	jobs map[string]*jobEntry
	seq  int

	sem     chan struct{}
	ttl     time.Duration
	maxJobs int

	root   context.Context
	cancel context.CancelFunc
	closed bool
	wg     sync.WaitGroup

	// tracer records one job:<type> span per finished job; nil disables.
	tracer *obs.Tracer

	// panicHook observes recovered runner panics (the server journals them
	// as job_panic events); nil disables.
	panicHook func(id string, typ api.JobType, traceID, msg string)

	now func() time.Time // injectable clock (tests)
}

type jobEntry struct {
	status api.Job
	cancel context.CancelFunc
	result *api.JobResult
	run    JobRunner
	done   chan struct{} // closed when the job reaches a terminal state
	tc     api.TraceContext
}

// Job-manager defaults (overridable through Config).
const (
	defaultJobWorkers = 2
	defaultJobTTL     = 15 * time.Minute
	defaultMaxJobs    = 64
)

// NewJobManager builds a manager running at most workers jobs at once,
// admitting at most maxJobs live (non-expired) jobs, and retaining
// terminal jobs for ttl.
func NewJobManager(workers, maxJobs int, ttl time.Duration) *JobManager {
	if workers <= 0 {
		workers = defaultJobWorkers
	}
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	if ttl <= 0 {
		ttl = defaultJobTTL
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &JobManager{
		jobs:    map[string]*jobEntry{},
		sem:     make(chan struct{}, workers),
		ttl:     ttl,
		maxJobs: maxJobs,
		root:    ctx,
		cancel:  cancel,
		now:     time.Now,
	}
}

// SetTracer installs the span recorder for job lifecycles. Call before
// serving traffic (not synchronized with in-flight jobs).
func (jm *JobManager) SetTracer(t *obs.Tracer) { jm.tracer = t }

// SetPanicHook installs an observer for recovered job panics. Call before
// serving traffic (not synchronized with in-flight jobs).
func (jm *JobManager) SetPanicHook(h func(id string, typ api.JobType, traceID, msg string)) {
	jm.panicHook = h
}

// Submit admits a job and returns its initial (pending) snapshot. A full
// admission set rejects with api.CodeOverloaded; a closed manager with
// api.CodeShuttingDown.
func (jm *JobManager) Submit(typ api.JobType, run JobRunner) (api.Job, error) {
	return jm.SubmitTraced(context.Background(), typ, run)
}

// SubmitTraced is Submit carrying the submitting request's trace: the
// job's lifecycle span joins that trace (and the job context carries it,
// so work the runner does downstream is parented correctly). The job's
// cancellation lifetime is still the manager's root — a submitting HTTP
// request ending must not cancel its job.
func (jm *JobManager) SubmitTraced(ctx context.Context, typ api.JobType, run JobRunner) (api.Job, error) {
	tc, _ := api.TraceFrom(ctx)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return api.Job{}, errShuttingDown()
	}
	jm.purgeLocked()
	// Only live (non-terminal) jobs count against admission: retained
	// finished jobs are history, not load, and counting them would turn
	// maxJobs into a hard rate limit of maxJobs-per-TTL on an idle server.
	active := 0
	for _, j := range jm.jobs {
		if !j.status.State.Terminal() {
			active++
		}
	}
	if active >= jm.maxJobs {
		return api.Job{}, api.Errorf(api.CodeOverloaded,
			"serve: job queue full (%d active jobs)", active).WithRetryAfter(5)
	}
	jm.seq++
	id := fmt.Sprintf("job-%d", jm.seq)
	jobCtx, cancel := context.WithCancel(jm.root)
	if tc.TraceID != "" {
		jobCtx = api.WithTrace(jobCtx, tc)
	}
	j := &jobEntry{
		status: api.Job{
			ID: id, Type: typ, State: api.JobPending, CreatedAt: jm.now(),
		},
		cancel: cancel,
		run:    run,
		done:   make(chan struct{}),
		tc:     tc,
	}
	jm.jobs[id] = j
	jm.wg.Add(1)
	go jm.execute(j, jobCtx)
	return j.status, nil
}

// execute is the per-job goroutine: wait for a worker slot, run, finish.
func (jm *JobManager) execute(j *jobEntry, ctx context.Context) {
	defer jm.wg.Done()
	select {
	case jm.sem <- struct{}{}:
		defer func() { <-jm.sem }()
	case <-ctx.Done():
		// Canceled while still pending: never ran.
		jm.finish(j, nil, ctx.Err())
		return
	}
	if err := ctx.Err(); err != nil {
		jm.finish(j, nil, err)
		return
	}
	jm.mu.Lock()
	j.status.State = api.JobRunning
	j.status.StartedAt = jm.now()
	jm.mu.Unlock()
	progress := func(stage string, done, total int) {
		jm.mu.Lock()
		j.status.Progress = api.JobProgress{Stage: stage, Done: done, Total: total}
		jm.mu.Unlock()
	}
	res, err := runProtected(j.run, ctx, progress, func(msg string) {
		if jm.panicHook != nil {
			jm.panicHook(j.status.ID, j.status.Type, j.tc.TraceID, msg)
		}
	})
	jm.finish(j, res, err)
}

// runProtected converts runner panics (shape mismatches deep in the nn
// stack) into typed internal errors so a malformed job cannot crash the
// service. onPanic (may be nil) observes the recovered value.
func runProtected(run JobRunner, ctx context.Context, progress func(string, int, int), onPanic func(string)) (res *api.JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if onPanic != nil {
				onPanic(fmt.Sprint(r))
			}
			res, err = nil, api.Errorf(api.CodeInternal, "serve: job panicked: %v", r)
		}
	}()
	return run(ctx, progress)
}

// finish records the terminal state. Cancellation maps to JobCanceled
// (shutting_down when the whole manager is closing, job_canceled when the
// client asked); other errors to JobFailed with their typed envelope.
func (jm *JobManager) finish(j *jobEntry, res *api.JobResult, err error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j.status.FinishedAt = jm.now()
	switch {
	case err == nil:
		j.status.State = api.JobSucceeded
		j.result = res
	// The runner may hand cancellation back raw (ctx.Err()) or already
	// wrapped into the typed envelope; both mean the same thing here.
	case errors.Is(err, context.Canceled),
		api.AsError(err).Code == api.CodeCanceled:
		j.status.State = api.JobCanceled
		if jm.closed {
			j.status.Error = errShuttingDown()
		} else {
			j.status.Error = api.Errorf(api.CodeJobCanceled, "serve: job %s canceled", j.status.ID)
		}
	default:
		j.status.State = api.JobFailed
		j.status.Error = api.AsError(err)
	}
	close(j.done)
	if j.tc.TraceID != "" {
		jm.tracer.Record(obs.Span{
			TraceID: j.tc.TraceID, SpanID: api.NewSpanID(), ParentID: j.tc.SpanID,
			Name: "job:" + string(j.status.Type), Start: j.status.CreatedAt,
			Seconds: j.status.FinishedAt.Sub(j.status.CreatedAt).Seconds(),
			Attrs: map[string]string{
				"id":    j.status.ID,
				"state": string(j.status.State),
			},
		})
	}
}

// purgeLocked drops terminal jobs older than the retention TTL and, if
// history still outnumbers 4×maxJobs, the oldest terminal jobs beyond that
// cap — memory stays bounded even under a submit storm faster than the
// TTL. Callers hold jm.mu.
func (jm *JobManager) purgeLocked() {
	cutoff := jm.now().Add(-jm.ttl)
	var terminal []*jobEntry
	for id, j := range jm.jobs {
		if !j.status.State.Terminal() {
			continue
		}
		if j.status.FinishedAt.Before(cutoff) {
			delete(jm.jobs, id)
			continue
		}
		terminal = append(terminal, j)
	}
	if excess := len(terminal) - 4*jm.maxJobs; excess > 0 {
		sort.Slice(terminal, func(a, b int) bool {
			return terminal[a].status.FinishedAt.Before(terminal[b].status.FinishedAt)
		})
		for _, j := range terminal[:excess] {
			delete(jm.jobs, j.status.ID)
		}
	}
}

// Get returns a job's status snapshot.
func (jm *JobManager) Get(id string) (api.Job, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	j, ok := jm.jobs[id]
	if !ok {
		return api.Job{}, api.Errorf(api.CodeJobNotFound, "serve: no job %q", id)
	}
	return j.status, nil
}

// List returns every live job, oldest first.
func (jm *JobManager) List() []api.Job {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	out := make([]api.Job, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		out = append(out, j.status)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].CreatedAt.Before(out[b].CreatedAt) })
	return out
}

// Result returns a succeeded job's output; non-terminal jobs answer
// job_not_ready, canceled ones job_canceled, failed ones their own error.
func (jm *JobManager) Result(id string) (*api.JobResult, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	j, ok := jm.jobs[id]
	if !ok {
		return nil, api.Errorf(api.CodeJobNotFound, "serve: no job %q", id)
	}
	switch j.status.State {
	case api.JobSucceeded:
		return j.result, nil
	case api.JobCanceled:
		return nil, api.Errorf(api.CodeJobCanceled, "serve: job %q was canceled", id)
	case api.JobFailed:
		return nil, j.status.Error
	default:
		return nil, api.Errorf(api.CodeJobNotReady, "serve: job %q is %s", id, j.status.State)
	}
}

// Cancel requests cancellation and returns the current snapshot. Terminal
// jobs are untouched (cancel is idempotent); a pending or running job's
// context is canceled and its state becomes canceled once the runner
// observes the signal — poll GET /v2/jobs/{id} or use Done.
func (jm *JobManager) Cancel(id string) (api.Job, error) {
	jm.mu.Lock()
	j, ok := jm.jobs[id]
	if !ok {
		jm.mu.Unlock()
		return api.Job{}, api.Errorf(api.CodeJobNotFound, "serve: no job %q", id)
	}
	snapshot := j.status
	jm.mu.Unlock()
	if !snapshot.State.Terminal() {
		j.cancel()
	}
	return snapshot, nil
}

// Done exposes the job's terminal-state signal (tests and waiters).
func (jm *JobManager) Done(id string) (<-chan struct{}, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Stats counts live jobs by state (rendered into /metrics and /healthz).
// It purges first so the gauges agree with what Get/List would answer.
func (jm *JobManager) Stats() map[string]int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	out := map[string]int{}
	for _, j := range jm.jobs {
		out[string(j.status.State)]++
	}
	return out
}

// Close cancels every non-terminal job and waits for their runners to
// return. Safe to call more than once.
func (jm *JobManager) Close() {
	jm.mu.Lock()
	jm.closed = true
	jm.mu.Unlock()
	jm.cancel()
	jm.wg.Wait()
}
