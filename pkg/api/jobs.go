package api

import "time"

// JobType selects the long-running pipeline a job runs.
type JobType string

const (
	JobSubsample JobType = "subsample" // the two-phase subsampling pipeline
	JobTrain     JobType = "train"     // subsample → train → (optionally) register
)

// JobState is a job's lifecycle position. Transitions are
// pending → running → {succeeded, failed, canceled}; terminal states never
// change again and expire from the server after a retention TTL.
type JobState string

const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobSucceeded || s == JobFailed || s == JobCanceled
}

// SubmitJobRequest is the body of POST /v2/jobs. Exactly one payload field
// matching Type must be set.
//
// IdempotencyKey, when non-empty, makes the submission safely retryable:
// resubmitting the same key to the same replica returns the original
// job instead of admitting a duplicate, and transports (the client SDK,
// the shard router) are allowed to retry keyed submissions on transport
// errors — without a key a retry could double-submit, so unkeyed
// submissions stay at-most-once. Keys are caller-chosen opaque strings
// (NewIdempotencyKey mints random ones) scoped to the job retention TTL.
type SubmitJobRequest struct {
	Type           JobType           `json:"type"`
	IdempotencyKey string            `json:"idempotencyKey,omitempty"`
	Subsample      *SubsampleRequest `json:"subsample,omitempty"`
	Train          *TrainJobSpec     `json:"train,omitempty"`
}

// NewIdempotencyKey mints a random 128-bit idempotency key.
func NewIdempotencyKey() string { return randomHex(16) }

// TrainJobSpec asks the server to subsample a dataset, train a surrogate
// on the selection, and (when Register is set) publish the trained weights
// to the model registry under that name.
type TrainJobSpec struct {
	Dataset   string            `json:"dataset"`
	Scale     string            `json:"scale,omitempty"`
	Subsample *SubsampleRequest `json:"subsample,omitempty"` // pipeline params; Snapshot/Dataset fields ignored
	Window    int               `json:"window,omitempty"`    // temporal window for example building (default 1)
	Spec      ModelSpec         `json:"spec"`
	Register  string            `json:"register,omitempty"` // registry name for the trained model
	Replicas  int               `json:"replicas,omitempty"` // replicas when registering
	Epochs    int               `json:"epochs,omitempty"`   // default 5
	Batch     int               `json:"batch,omitempty"`    // default 8
	LR        float64           `json:"lr,omitempty"`
	Seed      int64             `json:"seed,omitempty"`
}

// JobProgress is a monotonic position within the current stage, updated
// between cube batches (subsample) or epochs (train). Total may be zero
// while the work size is still unknown.
type JobProgress struct {
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total,omitempty"`
}

// Job is the status snapshot returned by POST /v2/jobs, GET /v2/jobs/{id}
// and DELETE /v2/jobs/{id}.
type Job struct {
	ID         string      `json:"id"`
	Type       JobType     `json:"type"`
	State      JobState    `json:"state"`
	Progress   JobProgress `json:"progress"`
	Error      *Error      `json:"error,omitempty"` // set for failed/canceled jobs
	CreatedAt  time.Time   `json:"createdAt"`
	StartedAt  time.Time   `json:"startedAt,omitzero"`
	FinishedAt time.Time   `json:"finishedAt,omitzero"`

	// IdempotencyKey echoes the submission's key, so a retrying caller
	// can tell it was deduplicated onto an existing job.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// JobResult is the body of GET /v2/jobs/{id}/result; the field matching
// the job's type is set.
type JobResult struct {
	Subsample *SubsampleResponse `json:"subsample,omitempty"`
	Train     *TrainJobResult    `json:"train,omitempty"`
}

// TrainJobResult summarizes a finished training job.
type TrainJobResult struct {
	Examples   int     `json:"examples"`
	Params     int     `json:"params"`
	Epochs     int     `json:"epochs"`
	FinalLoss  float64 `json:"finalLoss"`
	Registered string  `json:"registered,omitempty"` // model name, when Register was set
	Version    int     `json:"version,omitempty"`    // registered model version
}
