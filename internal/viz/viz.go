// Package viz renders fields and sampled point sets for the paper's
// qualitative figures (Figs. 1 and 3): grayscale PGM images of 2-D slices
// and sample-location overlays, plus compact ASCII renderings for terminal
// inspection.
package viz

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/grid"
)

// FieldToPGM renders the z=k slice of a variable as an 8-bit PGM image,
// linearly mapping [min, max] to [0, 255].
func FieldToPGM(f *grid.Field, varName string, k int) []byte {
	v := f.Var(varName)
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", f.Nx, f.Ny)
	out := []byte(b.String())
	for j := f.Ny - 1; j >= 0; j-- { // PGM top row first; flip to y-up
		for i := 0; i < f.Nx; i++ {
			x := v[f.Idx(i, j, k)]
			out = append(out, byte(255*(x-lo)/(hi-lo)))
		}
	}
	return out
}

// SamplesToPGM renders sample locations (flat indices of the z=k slice) as
// white dots on a dark rendering of the underlying variable.
func SamplesToPGM(f *grid.Field, varName string, k int, indices []int) []byte {
	img := FieldToPGM(f, varName, k)
	// Header ends after the third newline.
	hdr := 0
	for n := 0; n < 3; n++ {
		for img[hdr] != '\n' {
			hdr++
		}
		hdr++
	}
	// Dim the background so samples stand out.
	for p := hdr; p < len(img); p++ {
		img[p] /= 2
	}
	for _, idx := range indices {
		i, j, kk := f.Coords(idx)
		if kk != k {
			continue
		}
		row := f.Ny - 1 - j
		img[hdr+row*f.Nx+i] = 255
	}
	return img
}

// WritePGM writes a PGM image to path.
func WritePGM(path string, img []byte) error {
	return os.WriteFile(path, img, 0o644)
}

// FieldToASCII renders the z=k slice as an ASCII shade map downsampled to
// at most maxCols columns.
func FieldToASCII(f *grid.Field, varName string, k, maxCols int) string {
	shades := []byte(" .:-=+*#%@")
	v := f.Var(varName)
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	step := 1
	if f.Nx > maxCols {
		step = (f.Nx + maxCols - 1) / maxCols
	}
	var b strings.Builder
	for j := f.Ny - 1; j >= 0; j -= 2 * step { // chars are ~2× taller than wide
		for i := 0; i < f.Nx; i += step {
			x := v[f.Idx(i, j, k)]
			s := int(float64(len(shades)-1) * (x - lo) / (hi - lo))
			b.WriteByte(shades[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SamplesToASCII marks sampled locations with 'o' over a blank canvas,
// showing the spatial pattern of a sampling method.
func SamplesToASCII(f *grid.Field, k, maxCols int, indices []int) string {
	step := 1
	if f.Nx > maxCols {
		step = (f.Nx + maxCols - 1) / maxCols
	}
	rows := (f.Ny + 2*step - 1) / (2 * step)
	cols := (f.Nx + step - 1) / step
	canvas := make([][]byte, rows)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(".", cols))
	}
	for _, idx := range indices {
		i, j, kk := f.Coords(idx)
		if kk != k {
			continue
		}
		r := (f.Ny - 1 - j) / (2 * step)
		c := i / step
		if r >= 0 && r < rows && c < cols {
			canvas[r][c] = 'o'
		}
	}
	var b strings.Builder
	for _, row := range canvas {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
