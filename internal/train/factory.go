package train

import (
	"fmt"
	"math/rand"
	"strings"
)

// ArchSpec names one of the Table 2 architectures together with the
// dimensions needed to rebuild an identical replica — the contract a
// checkpoint written by nn.SaveCheckpoint imposes on its reader. It is the
// shared currency between cmd/sickle-train (which writes checkpoints) and
// internal/serve's model registry (which loads them into worker replicas).
type ArchSpec struct {
	Arch   string `json:"arch"`             // lstm | mlp_transformer | cnn_transformer | matey
	InDim  int    `json:"inDim"`            // lstm: input width; others: input variables
	Hidden int    `json:"hidden,omitempty"` // lstm hidden size / transformer model dim (default 16)
	Heads  int    `json:"heads,omitempty"`  // attention heads (default 2)
	OutDim int    `json:"outDim"`           // lstm: output width; others: output variables
	Edge   int    `json:"edge,omitempty"`   // decoder cube edge (transformer/MATEY only)
}

func (s ArchSpec) withDefaults() ArchSpec {
	if s.Hidden <= 0 {
		s.Hidden = 16
	}
	if s.Heads <= 0 {
		s.Heads = 2
	}
	return s
}

// Validate reports whether the spec can build a model.
func (s ArchSpec) Validate() error {
	switch strings.ToLower(s.Arch) {
	case "lstm":
		if s.InDim <= 0 || s.OutDim <= 0 {
			return fmt.Errorf("train: lstm spec needs inDim and outDim, got %+v", s)
		}
	case "mlp_transformer", "cnn_transformer", "matey":
		if s.InDim <= 0 || s.OutDim <= 0 || s.Edge <= 0 {
			return fmt.Errorf("train: %s spec needs inDim, outDim and edge, got %+v", s.Arch, s)
		}
	default:
		return fmt.Errorf("train: unknown arch %q (want lstm|mlp_transformer|cnn_transformer|matey)", s.Arch)
	}
	return nil
}

// Build constructs a freshly initialized model from the spec.
func (s ArchSpec) Build(rng *rand.Rand) (Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	switch strings.ToLower(s.Arch) {
	case "lstm":
		return NewLSTMModel(rng, s.InDim, s.Hidden, s.OutDim), nil
	case "mlp_transformer":
		return NewMLPTransformer(rng, s.InDim, s.Hidden, s.Heads, s.OutDim, s.Edge), nil
	case "cnn_transformer":
		return NewCNNTransformer(rng, s.InDim, s.Hidden, s.Heads, s.OutDim, s.Edge), nil
	case "matey":
		return NewMATEYModel(rng, s.InDim, s.Hidden, s.Heads, s.OutDim, s.Edge), nil
	}
	return nil, fmt.Errorf("train: unknown arch %q", s.Arch)
}

// Factory adapts the spec to the ModelFactory signature Train expects.
// Validate first; Build errors surface as a panic here because the training
// loop has no error channel for replica construction.
func (s ArchSpec) Factory() ModelFactory {
	return func(rng *rand.Rand) Model {
		m, err := s.Build(rng)
		if err != nil {
			panic(err)
		}
		return m
	}
}
