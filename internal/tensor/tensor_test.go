package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialized(t *testing.T) {
	a := New(3, 4)
	if a.Len() != 12 {
		t.Fatalf("Len = %d, want 12", a.Len())
	}
	for i, v := range a.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched shape")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major layout: offset = (1*3+2)*4+3 = 23.
	if a.Data[23] != 7.5 {
		t.Fatalf("row-major offset wrong: Data[23]=%v", a.Data[23])
	}
}

func TestReshapeInfer(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, -1)
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("Reshape got %v, want [3 2]", b.Shape)
	}
	b.Data[0] = 99
	if a.Data[0] != 99 {
		t.Fatal("Reshape must be a view, not a copy")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := Add(a, b).Data; got[0] != 11 || got[2] != 33 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[1] != 18 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
	c := a.Clone()
	c.AddScaled(2, b)
	if c.Data[0] != 21 {
		t.Fatalf("AddScaled = %v", c.Data)
	}
	if a.Data[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{-1, 4, 2, -7}, 4)
	if a.Sum() != -2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != -0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 4 || a.Min() != -7 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(70)) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Rand(rng, 1, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(c.Data[i]-a.Data[i]) > 1e-14 {
			t.Fatalf("A@I != A at %d", i)
		}
	}
}

// TestMatMulParallelMatchesSerial exercises the goroutine path (m >=
// parallelThreshold) against a naive triple loop.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 97, 33, 41
	a := Rand(rng, 1, m, k)
	b := Rand(rng, 1, k, n)
	got := MatMul(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			if math.Abs(got.At(i, j)-s) > 1e-10 {
				t.Fatalf("MatMul(%d,%d) = %v, want %v", i, j, got.At(i, j), s)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("Transpose shape %v", at.Shape)
	}
	if at.At(2, 1) != a.At(1, 2) {
		t.Fatal("Transpose values wrong")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{5, 6}, 2)
	y := MatVec(a, x)
	if y.Data[0] != 17 || y.Data[1] != 39 {
		t.Fatalf("MatVec = %v", y.Data)
	}
}

func TestAddRowVecSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float64{10, 20, 30}, 3)
	dst := New(2, 3)
	AddRowVecInto(dst, a, v)
	if dst.At(1, 2) != 36 {
		t.Fatalf("AddRowVec = %v", dst.Data)
	}
	s := New(3)
	SumRowsInto(s, a)
	if s.Data[0] != 5 || s.Data[1] != 7 || s.Data[2] != 9 {
		t.Fatalf("SumRows = %v", s.Data)
	}
}

// Property: matmul distributes over addition, A(B+C) = AB + AC.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Rand(rng, 1, 4, 5)
		b := Rand(rng, 1, 5, 3)
		c := Rand(rng, 1, 5, 3)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A^T)^T = A and (AB)^T = B^T A^T.
func TestTransposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Rand(rng, 1, 3, 6)
		b := Rand(rng, 1, 6, 4)
		att := Transpose(Transpose(a))
		for i := range a.Data {
			if att.Data[i] != a.Data[i] {
				return false
			}
		}
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: dot(x, x) = |x|² >= 0.
func TestDotNormConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Rand(rng, 2, 17)
		d := Dot(x, x)
		n := x.Norm2()
		return d >= 0 && math.Abs(d-n*n) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyAndFill(t *testing.T) {
	a := New(4)
	a.Fill(2)
	a.Apply(func(x float64) float64 { return x * x })
	for _, v := range a.Data {
		if v != 4 {
			t.Fatalf("Apply = %v", a.Data)
		}
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(rng, 1, 128, 128)
	y := Rand(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
