package detparallel_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/detparallel"
)

func TestDetparallel(t *testing.T) {
	analysistest.Run(t, detparallel.Analyzer, "detparallel/a")
}
