package api

// InferItem is one example: a flat row-major payload plus its shape
// (without the batch dimension).
type InferItem struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// InferRequest is the JSON body of POST /v1/infer and /v2/infer.
type InferRequest struct {
	Model string      `json:"model"`
	Items []InferItem `json:"items"`
}

// InferResponse returns one output per input item, in order. BatchSizes
// records the micro-batch each item rode in — load generators use it to
// show batching engaged.
type InferResponse struct {
	Model      string      `json:"model"`
	Version    int         `json:"version"`
	Outputs    []InferItem `json:"outputs"`
	BatchSizes []int       `json:"batchSizes"`
}

// SubsampleRequest is the body of POST /v1/subsample and /v2/subsample,
// and the payload of a subsample job: either a named registry dataset
// (synthesized on first use, then cached) or a .skl shard path, plus the
// two-phase pipeline parameters.
type SubsampleRequest struct {
	Dataset string `json:"dataset,omitempty"` // a registry dataset name
	Scale   string `json:"scale,omitempty"`   // "small" (default) | "large"
	Shard   string `json:"shard,omitempty"`   // path to a .skl file instead of a dataset

	Snapshot      int    `json:"snapshot"`
	Hypercubes    string `json:"hypercubes,omitempty"`
	Method        string `json:"method,omitempty"`
	NumHypercubes int    `json:"numHypercubes,omitempty"`
	NumSamples    int    `json:"numSamples,omitempty"`
	Cube          int    `json:"cube,omitempty"` // cube edge (clamped to the grid)
	NumClusters   int    `json:"numClusters,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
}

// SubsampleResponse summarizes a pipeline run (or shard read).
type SubsampleResponse struct {
	Dataset   string  `json:"dataset"`
	Snapshot  int     `json:"snapshot"`
	Cubes     int     `json:"cubes"`
	Points    int     `json:"points"`
	CacheHit  bool    `json:"cacheHit"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// ModelSpec names a servable architecture together with the dimensions
// needed to rebuild an identical replica — the contract a checkpoint
// imposes on its reader. It mirrors the trainer's ArchSpec field for
// field so v1 payloads stay byte-compatible.
type ModelSpec struct {
	Arch   string `json:"arch"`             // lstm | mlp_transformer | cnn_transformer | matey
	InDim  int    `json:"inDim"`            // lstm: input width; others: input variables
	Hidden int    `json:"hidden,omitempty"` // lstm hidden size / transformer model dim (default 16)
	Heads  int    `json:"heads,omitempty"`  // attention heads (default 2)
	OutDim int    `json:"outDim"`           // lstm: output width; others: output variables
	Edge   int    `json:"edge,omitempty"`   // decoder cube edge (transformer/MATEY only)
}

// ModelInfo describes one registered model version, as listed by
// GET /v1/models and /v2/models.
type ModelInfo struct {
	Name       string    `json:"name"`
	Version    int       `json:"version"`
	Spec       ModelSpec `json:"spec"`
	Checkpoint string    `json:"checkpoint,omitempty"`
	InputShape []int     `json:"inputShape,omitempty"` // per-example shape, no batch dim
	Replicas   int       `json:"replicas"`
}

// RegisterModelRequest is the body of POST /v1/models and /v2/models: load
// (or hot-swap) a checkpoint under a name.
type RegisterModelRequest struct {
	Name       string    `json:"name"`
	Spec       ModelSpec `json:"spec"`
	Checkpoint string    `json:"checkpoint"`
	InputShape []int     `json:"inputShape,omitempty"`
	Replicas   int       `json:"replicas,omitempty"`
}

// Health is the GET /healthz body. A single-node server fills the first
// five fields; a shard router additionally reports the state of every
// backend it fronts in Replicas (aggregating Models/QueueDepth/Jobs across
// the live ones).
type Health struct {
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptimeSeconds"`
	Models        []string        `json:"models"`
	QueueDepth    int             `json:"queueDepth"`
	Jobs          map[string]int  `json:"jobs,omitempty"`        // job counts by state
	Replication   int             `json:"replication,omitempty"` // shard router only: owner-set size K
	Replicas      []ReplicaHealth `json:"replicas,omitempty"`    // shard router only
}

// ReplicaHealth is one backend's state as seen by a shard router's health
// prober.
type ReplicaHealth struct {
	ID                  string `json:"id"`
	URL                 string `json:"url"`
	Up                  bool   `json:"up"`
	Draining            bool   `json:"draining,omitempty"` // bleeding sticky jobs before leaving
	Status              string `json:"status,omitempty"`   // replica's own Health.Status (e.g. "ok", "degraded")
	ConsecutiveFailures int    `json:"consecutiveFailures,omitempty"`
	Error               string `json:"error,omitempty"` // last probe/call failure while down
}

// ---- shard membership admin API (router only) ----

// AdminReplica is one entry in the router's membership view
// (GET /admin/replicas).
type AdminReplica struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Draining bool   `json:"draining,omitempty"`
}

// AdminReplicas is the GET /admin/replicas body: the ring's current
// membership plus the configured replication factor.
type AdminReplicas struct {
	Replication int            `json:"replication"`
	Replicas    []AdminReplica `json:"replicas"`
}

// JoinReplicaRequest is the POST /admin/replicas body: add a running
// sickle-serve backend to the ring. The router health-checks the URL and
// warm-prefetches the fleet's model catalog onto it before it takes any
// keyed traffic.
type JoinReplicaRequest struct {
	URL string `json:"url"`
}

// JoinReplicaResponse reports the assigned replica identity and which
// models the warm-cache prefetch managed to register on the newcomer
// before it was admitted to the ring.
type JoinReplicaResponse struct {
	Replica          AdminReplica `json:"replica"`
	PrefetchedModels []string     `json:"prefetchedModels"`
}

// DrainReplicaResponse is the DELETE /admin/replicas/{id} body: the
// removed replica and how many sticky jobs the rolling drain waited out
// before taking it off the ring.
type DrainReplicaResponse struct {
	Replica     AdminReplica `json:"replica"`
	DrainedJobs int          `json:"drainedJobs"`
}
