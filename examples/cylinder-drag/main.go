// Cylinder-drag: the paper's Fig. 6 workflow in miniature. A lattice-
// Boltzmann cylinder flow generates velocity snapshots and a drag signal;
// SICKLE subsamples each snapshot with random vs MaxEnt sampling; an LSTM
// surrogate is trained to predict drag from the sampled points; and the
// test losses of both samplers are compared across replicates.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/cfd2d"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/train"
)

func main() {
	fmt.Println("running lattice-Boltzmann cylinder flow (OF2D analogue)...")
	d := cfd2d.OF2DDataset(cfd2d.Config{
		Nx: 160, Ny: 64, U0: 0.1, Reynolds: 150, D: 12, Cx: 32, Cy: 32,
	}, 2500, 60, 120)
	fmt.Printf("dataset: %s grid, %d snapshots, drag range [%.3f, %.3f]\n",
		d.GridString(), d.NTime(), minOf(d.GlobalTargets), maxOf(d.GlobalTargets))

	for _, method := range []string{"random", "maxent"} {
		var losses []float64
		for rep := 0; rep < 3; rep++ {
			cubes, err := sampling.SubsampleDataset(context.Background(), d, sampling.PipelineConfig{
				Hypercubes: "random", Method: method,
				NumHypercubes: 1 << 20, NumSamples: 400,
				CubeSx: 160, CubeSy: 64, CubeSz: 1,
				NumClusters: 10, Seed: int64(100 + rep),
			})
			if err != nil {
				log.Fatal(err)
			}
			ex, err := train.BuildSampleSingle(d, cubes, 3)
			if err != nil {
				log.Fatal(err)
			}
			factory := func(rng *rand.Rand) train.Model {
				return train.NewLSTMModel(rng, ex[0].Input.Dim(1), 16, 1)
			}
			_, hist, err := train.Train(context.Background(), factory, ex, train.Config{
				Epochs: 120, Batch: 8, Seed: int64(rep), Normalize: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			losses = append(losses, hist.FinalLoss)
		}
		m := stats.ComputeMoments(losses)
		fmt.Printf("%-8s test loss = %.5f ± %.5f over 3 replicates\n",
			method, m.Mean, math.Sqrt(m.Variance))
	}
	fmt.Println("\nThe paper's Fig. 6 found MaxEnt more reproducible and often more")
	fmt.Println("accurate for the drag objective — but also that \"random sampling")
	fmt.Println("performs quite well in many scenarios\" (§7). At this miniature")
	fmt.Println("scale the ordering is seed-sensitive; run the full sweep with")
	fmt.Println("`go run ./cmd/sickle-bench -exp fig6` for the 3×3×3 comparison.")
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
