// Package ologonly keeps ad-hoc printing out of the long-running stack.
//
// PR 6 routed all operational output of the four long-running binaries
// (sickle-serve, sickle-shard, sickle-stream, sickle-train) and their
// libraries through the structured olog logger, so that -log-level and
// -log-json actually govern everything the process emits. A stray
// log.Printf or fmt.Println bypasses leveling, JSON mode, and the
// warn/error rate limiter.
//
// Within the long-running packages (serve, shard, stream, train,
// durable, minimpi, obs and its subpackages except the terminal renderer
// obs/top, and the four binaries) the pass bans:
//
//   - the standard "log" package (the project logger is
//     internal/obs/log);
//   - fmt.Print/Printf/Println and the print/println builtins — the
//     implicit-stdout writers.
//
// fmt.Fprintf to an explicit writer stays legal everywhere, short-lived
// CLIs (sickle-bench, sickle-gendata, examples/) are out of scope, and a
// long-running CLI's deliberate result summary annotates with
// //sicklevet:file-ignore ologonly <reason>.
package ologonly

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ologonly pass.
var Analyzer = &analysis.Analyzer{
	Name: "ologonly",
	Doc:  "long-running binaries and their libraries must log through olog, not log.* or fmt.Print*",
	Run:  run,
}

// longRunning are the import-path suffixes where implicit-stdout printing
// is banned. internal/obs/top is deliberately absent: it renders the
// terminal console.
var longRunning = []string{
	"internal/serve", "internal/shard", "internal/stream", "internal/train",
	"internal/durable", "internal/minimpi",
	"internal/obs", "internal/obs/log", "internal/obs/slo", "internal/obs/events", "internal/obs/tsdb",
	"cmd/sickle-serve", "cmd/sickle-shard", "cmd/sickle-stream", "cmd/sickle-train",
}

var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func run(pass *analysis.Pass) (any, error) {
	path := pass.PkgPath()
	inLongRunning := false
	for _, suffix := range longRunning {
		if analysis.PathHasSuffix(path, suffix) {
			inLongRunning = true
			break
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				// The print/println builtins resolve to *types.Builtin,
				// not *types.Func.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && inLongRunning {
					if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin &&
						(id.Name == "print" || id.Name == "println") {
						pass.Reportf(call.Pos(), "builtin %s writes to stderr unstructured; use the olog logger", id.Name)
					}
				}
				return true
			}
			if inLongRunning && fn.Pkg() != nil && fn.Pkg().Path() == "log" {
				pass.Reportf(call.Pos(),
					"standard log package bypasses olog leveling and rate limiting; use internal/obs/log")
				return true
			}
			if inLongRunning && analysis.IsFuncNamed(fn, "fmt", fn.Name()) && printFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"fmt.%s writes to process stdout; use the olog logger or fmt.Fprintf to an explicit writer "+
						"(CLI result output: //sicklevet:file-ignore ologonly <reason>)", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
