// Package grid provides the structured-field data model for SICKLE-Go:
// multi-variable 2-D/3-D snapshots on uniform grids, hypercube (sub-block)
// extraction, and the derived turbulence quantities the paper's Table 1 uses
// as cluster variables (vorticity, enstrophy, dissipation rate, potential
// vorticity).
//
// Storage is x-fastest row-major: index = (k*Ny + j)*Nx + i.
package grid

import (
	"fmt"
	"math"
)

// Field is one simulation snapshot: a set of named scalar variables on a
// uniform Nx×Ny×Nz grid (Nz = 1 for 2-D data).
type Field struct {
	Nx, Ny, Nz int
	Dx, Dy, Dz float64
	Time       float64
	Vars       map[string][]float64
}

// NewField allocates an empty field with the given dimensions and unit
// spacing.
func NewField(nx, ny, nz int) *Field {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %d×%d×%d", nx, ny, nz))
	}
	return &Field{Nx: nx, Ny: ny, Nz: nz, Dx: 1, Dy: 1, Dz: 1, Vars: map[string][]float64{}}
}

// NPoints returns the number of grid points.
func (f *Field) NPoints() int { return f.Nx * f.Ny * f.Nz }

// Is2D reports whether the field is planar.
func (f *Field) Is2D() bool { return f.Nz == 1 }

// Idx returns the flat index of (i, j, k).
func (f *Field) Idx(i, j, k int) int { return (k*f.Ny+j)*f.Nx + i }

// Coords returns the (i, j, k) coordinates of flat index idx.
func (f *Field) Coords(idx int) (i, j, k int) {
	i = idx % f.Nx
	j = (idx / f.Nx) % f.Ny
	k = idx / (f.Nx * f.Ny)
	return
}

// AddVar registers (or replaces) a variable, allocating storage if data is
// nil. The returned slice is the live backing array.
func (f *Field) AddVar(name string, data []float64) []float64 {
	n := f.NPoints()
	if data == nil {
		data = make([]float64, n)
	}
	if len(data) != n {
		panic(fmt.Sprintf("grid: variable %q has %d values, grid has %d points", name, len(data), n))
	}
	f.Vars[name] = data
	return data
}

// Var returns the named variable, panicking if absent. Use HasVar to probe.
func (f *Field) Var(name string) []float64 {
	v, ok := f.Vars[name]
	if !ok {
		panic(fmt.Sprintf("grid: unknown variable %q (have %v)", name, f.VarNames()))
	}
	return v
}

// HasVar reports whether the variable exists.
func (f *Field) HasVar(name string) bool {
	_, ok := f.Vars[name]
	return ok
}

// VarNames returns the variable names in deterministic (sorted) order.
func (f *Field) VarNames() []string {
	names := make([]string, 0, len(f.Vars))
	for n := range f.Vars {
		names = append(names, n)
	}
	// insertion sort: tiny n, avoids importing sort for one call site
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// SizeBytes returns the in-memory footprint of the field's variables,
// assuming float64 storage. Used for Table 1 size reporting.
func (f *Field) SizeBytes() int64 {
	return int64(len(f.Vars)) * int64(f.NPoints()) * 8
}

// Point assembles the feature vector of the given variables at flat index
// idx into dst (which must have len(vars)).
func (f *Field) Point(idx int, vars []string, dst []float64) {
	for v, name := range vars {
		dst[v] = f.Vars[name][idx]
	}
}

// Points returns an n×d matrix of the given variables at the given flat
// indices (all points when indices is nil).
func (f *Field) Points(vars []string, indices []int) [][]float64 {
	cols := make([][]float64, len(vars))
	for i, name := range vars {
		cols[i] = f.Var(name)
	}
	n := f.NPoints()
	if indices != nil {
		n = len(indices)
	}
	backing := make([]float64, n*len(vars))
	pts := make([][]float64, n)
	for r := 0; r < n; r++ {
		idx := r
		if indices != nil {
			idx = indices[r]
		}
		row := backing[r*len(vars) : (r+1)*len(vars)]
		for c := range cols {
			row[c] = cols[c][idx]
		}
		pts[r] = row
	}
	return pts
}

// wrap implements periodic boundary indexing.
func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// ddx, ddy, ddz are second-order central differences with periodic wrap.
func (f *Field) ddx(v []float64, i, j, k int) float64 {
	return (v[f.Idx(wrap(i+1, f.Nx), j, k)] - v[f.Idx(wrap(i-1, f.Nx), j, k)]) / (2 * f.Dx)
}

func (f *Field) ddy(v []float64, i, j, k int) float64 {
	return (v[f.Idx(i, wrap(j+1, f.Ny), k)] - v[f.Idx(i, wrap(j-1, f.Ny), k)]) / (2 * f.Dy)
}

func (f *Field) ddz(v []float64, i, j, k int) float64 {
	if f.Nz == 1 {
		return 0
	}
	return (v[f.Idx(i, j, wrap(k+1, f.Nz))] - v[f.Idx(i, j, wrap(k-1, f.Nz))]) / (2 * f.Dz)
}

// ComputeVorticityZ computes the z-component of vorticity ω_z = ∂v/∂x −
// ∂u/∂y and stores it under "wz". This is the KCV for the OF2D case.
func (f *Field) ComputeVorticityZ() []float64 {
	u, v := f.Var("u"), f.Var("v")
	wz := f.AddVar("wz", nil)
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				wz[f.Idx(i, j, k)] = f.ddx(v, i, j, k) - f.ddy(u, i, j, k)
			}
		}
	}
	return wz
}

// ComputeEnstrophy computes Ω = ½|ω|² from u, v, w and stores it under
// "enstrophy". This is the KCV for the GESTS cases (Table 1).
func (f *Field) ComputeEnstrophy() []float64 {
	u, v, w := f.Var("u"), f.Var("v"), f.Var("w")
	ens := f.AddVar("enstrophy", nil)
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				wx := f.ddy(w, i, j, k) - f.ddz(v, i, j, k)
				wy := f.ddz(u, i, j, k) - f.ddx(w, i, j, k)
				wzv := f.ddx(v, i, j, k) - f.ddy(u, i, j, k)
				ens[f.Idx(i, j, k)] = 0.5 * (wx*wx + wy*wy + wzv*wzv)
			}
		}
	}
	return ens
}

// ComputeDissipation computes the (pseudo-)dissipation rate ε = 2ν S_ij S_ij
// from the velocity gradients and stores it under "dissipation".
func (f *Field) ComputeDissipation(nu float64) []float64 {
	u, v, w := f.Var("u"), f.Var("v"), f.Var("w")
	eps := f.AddVar("dissipation", nil)
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				ux, uy, uz := f.ddx(u, i, j, k), f.ddy(u, i, j, k), f.ddz(u, i, j, k)
				vx, vy, vz := f.ddx(v, i, j, k), f.ddy(v, i, j, k), f.ddz(v, i, j, k)
				wx, wy, wz := f.ddx(w, i, j, k), f.ddy(w, i, j, k), f.ddz(w, i, j, k)
				sxx, syy, szz := ux, vy, wz
				sxy := 0.5 * (uy + vx)
				sxz := 0.5 * (uz + wx)
				syz := 0.5 * (vz + wy)
				ss := sxx*sxx + syy*syy + szz*szz + 2*(sxy*sxy+sxz*sxz+syz*syz)
				eps[f.Idx(i, j, k)] = 2 * nu * ss
			}
		}
	}
	return eps
}

// ComputePotentialVorticity computes q = ω · ∇ρ (the Ertel potential
// vorticity for a Boussinesq flow with buoyancy variable ρ) and stores it
// under "pv". This is the KCV for the SST cases.
func (f *Field) ComputePotentialVorticity() []float64 {
	u, v, w := f.Var("u"), f.Var("v"), f.Var("w")
	rho := f.Var("r")
	pv := f.AddVar("pv", nil)
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				wx := f.ddy(w, i, j, k) - f.ddz(v, i, j, k)
				wy := f.ddz(u, i, j, k) - f.ddx(w, i, j, k)
				wzv := f.ddx(v, i, j, k) - f.ddy(u, i, j, k)
				rx, ry, rz := f.ddx(rho, i, j, k), f.ddy(rho, i, j, k), f.ddz(rho, i, j, k)
				pv[f.Idx(i, j, k)] = wx*rx + wy*ry + wzv*rz
			}
		}
	}
	return pv
}

// RMS returns the root-mean-square of a variable.
func (f *Field) RMS(name string) float64 {
	v := f.Var(name)
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s / float64(len(v)))
}
