// Package serve turns SICKLE-Go's offline pipeline into an online service:
// an HTTP JSON API over the trained surrogates (micro-batched inference
// through a bounded worker pool) and the subsampling pipeline (datasets and
// .skl shards resolved through a bounded LRU cache), with health and
// Prometheus-style metrics endpoints. cmd/sickle-serve is the binary;
// cmd/sickle-bench -serve is the matching load generator.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/tensor"
	"repro/internal/train"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	Addr         string        // listen address (default :8080)
	MaxBatch     int           // micro-batch cap (default 16)
	Window       time.Duration // batch collection window (default 2ms)
	Workers      int           // worker pool size (default GOMAXPROCS)
	CacheEntries int           // LRU capacity for datasets/shards (default 8)
	Replicas     int           // model replicas per registered model (default 2)
}

func (c *Config) defaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
}

// Server wires the registry, batcher, cache and metrics behind an HTTP mux.
type Server struct {
	cfg     Config
	reg     *Registry
	batcher *Batcher
	cache   *LRU
	met     *Metrics
	httpSrv *http.Server
	start   time.Time
}

// NewServer builds a ready-to-listen server.
func NewServer(cfg Config) *Server {
	cfg.defaults()
	met := NewMetrics()
	reg := NewRegistry()
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		batcher: NewBatcher(reg, met, cfg.MaxBatch, cfg.Window, cfg.Workers),
		cache:   NewLRU(cfg.CacheEntries),
		met:     met,
		start:   time.Now(),
	}
	s.httpSrv = &http.Server{Addr: cfg.Addr, Handler: s.Handler()}
	return s
}

// Registry exposes the model registry for pre-registering models.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the collector (tests assert on mean batch size).
func (s *Server) Metrics() *Metrics { return s.met }

// Cache exposes the dataset/shard LRU.
func (s *Server) Cache() *LRU { return s.cache }

// Handler returns the route mux (also usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/infer", s.instrument("/v1/infer", s.handleInfer))
	mux.HandleFunc("/v1/subsample", s.instrument("/v1/subsample", s.handleSubsample))
	mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModels))
	return mux
}

// ListenAndServe blocks serving on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve blocks serving on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: the HTTP server stops accepting and waits for
// in-flight handlers (each blocked on its batched result), then the batcher
// is torn down. A request that was admitted before Shutdown always gets its
// real response.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.batcher.Stop()
	return err
}

// instrument wraps a handler with latency/error accounting.
func (s *Server) instrument(route string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.met.AddInflight(1)
		err := h(w, r)
		s.met.AddInflight(-1)
		s.met.ObserveRequest(route, time.Since(t0), err != nil)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) error {
	writeJSON(w, status, map[string]string{"error": err.Error()})
	return err
}

// InferItem is one example: a flat row-major payload plus its shape
// (without the batch dimension).
type InferItem struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// InferRequest is the JSON body of POST /v1/infer.
type InferRequest struct {
	Model string      `json:"model"`
	Items []InferItem `json:"items"`
}

// InferResponse returns one output per input item, in order. BatchSizes
// records the micro-batch each item rode in — the load generator uses it to
// show batching engaged.
type InferResponse struct {
	Model      string      `json:"model"`
	Version    int         `json:"version"`
	Outputs    []InferItem `json:"outputs"`
	BatchSizes []int       `json:"batchSizes"`
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
	}
	if req.Model == "" || len(req.Items) == 0 {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("need model and at least one item"))
	}
	if _, ok := s.reg.Lookup(req.Model); !ok {
		return writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
	}
	inputs := make([]*tensor.Tensor, len(req.Items))
	for i, it := range req.Items {
		n := 1
		for _, d := range it.Shape {
			if d <= 0 {
				return writeError(w, http.StatusBadRequest, fmt.Errorf("item %d: bad shape %v", i, it.Shape))
			}
			n *= d
		}
		if len(it.Shape) == 0 || n != len(it.Data) {
			return writeError(w, http.StatusBadRequest,
				fmt.Errorf("item %d: shape %v wants %d values, got %d", i, it.Shape, n, len(it.Data)))
		}
		inputs[i] = tensor.FromSlice(it.Data, it.Shape...)
	}
	// Enqueue every item separately so items from concurrent clients can
	// share micro-batches, then gather in order.
	type itemOut struct {
		out     *tensor.Tensor
		version int
		batch   int
		err     error
	}
	outs := make([]itemOut, len(inputs))
	done := make(chan int, len(inputs))
	for i := range inputs {
		go func(i int) {
			o, v, bsz, err := s.batcher.Infer(req.Model, inputs[i])
			outs[i] = itemOut{o, v, bsz, err}
			done <- i
		}(i)
	}
	for range inputs {
		<-done
	}
	resp := InferResponse{Model: req.Model}
	for i, o := range outs {
		if o.err != nil {
			return writeError(w, http.StatusInternalServerError, fmt.Errorf("item %d: %w", i, o.err))
		}
		resp.Version = o.version
		resp.Outputs = append(resp.Outputs, InferItem{Shape: o.out.Shape, Data: o.out.Data})
		resp.BatchSizes = append(resp.BatchSizes, o.batch)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubsample(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
	}
	var req SubsampleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
	}
	resp, err := s.handleSubsampleRequest(&req)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

// RegisterModelRequest is the JSON body of POST /v1/models: load (or
// hot-swap) a checkpoint under a name.
type RegisterModelRequest struct {
	Name       string         `json:"name"`
	Spec       train.ArchSpec `json:"spec"`
	Checkpoint string         `json:"checkpoint"`
	InputShape []int          `json:"inputShape,omitempty"`
	Replicas   int            `json:"replicas,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) error {
	switch r.Method {
	case http.MethodGet:
		return writeJSON(w, http.StatusOK, s.reg.List())
	case http.MethodPost:
		var req RegisterModelRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		}
		replicas := req.Replicas
		if replicas <= 0 {
			replicas = s.cfg.Replicas
		}
		e, err := s.reg.Register(req.Name, req.Spec, req.Checkpoint, req.InputShape, replicas)
		if err != nil {
			return writeError(w, http.StatusBadRequest, err)
		}
		return writeJSON(w, http.StatusOK, e)
	default:
		return writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST"))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	models := []string{}
	for _, e := range s.reg.List() {
		models = append(models, fmt.Sprintf("%s@v%d", e.Name, e.Version))
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"models":        models,
		"queueDepth":    s.batcher.QueueDepth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.met.Render(s.cache))
}
