// Stratified-pipeline: the full T1→T2→T3 workflow of the paper's Fig. 2 on
// a stratified-turbulence trajectory — parallel MaxEnt subsampling, binary
// subsample storage, MLP-Transformer training, and an energy report in the
// style of Fig. 8.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/cfd3d"
	"repro/internal/energy"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/train"
)

func main() {
	// T0: evolve a Taylor-Green array under stratification (SST-P1F4-like).
	fmt.Println("evolving Taylor-Green trajectory under stratification...")
	d := cfd3d.EvolveDataset("SST-P1F4-demo", 8, 2, cfd3d.Config{N: 32, Seed: 3, BruntN: 2})
	fmt.Printf("dataset: %s, %d snapshots, %.1f MB\n",
		d.GridString(), d.NTime(), float64(d.SizeBytes())/1e6)

	// T1: two-phase MaxEnt subsampling across 4 minimpi ranks.
	meterSample := energy.NewMeter()
	cfg := sampling.PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 3, NumSamples: 16 * 16 * 16 / 10,
		CubeSx: 16, CubeSy: 16, CubeSz: 16,
		NumClusters: 5, Seed: 9, Meter: meterSample,
	}
	cubes, world, err := sampling.SubsampleParallel(context.Background(), d, cfg, 4, sickle.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T1: %d cube-samples (sim comm %.3g s); %s\n",
		len(cubes), world.MaxSimCommSeconds(), meterSample)

	// Persist the subsample; report the storage reduction.
	path := "sst_subsample.skl"
	if err := sickle.SaveCubeSamples(path, cubes); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	ratio, _ := sickle.StorageReduction(d, path)
	fmt.Printf("stored %s: %.0fx smaller than the raw trajectory\n", path, ratio)

	// T2: train the sample-full MLP-Transformer surrogate.
	meterTrain := energy.NewMeter()
	ex, err := train.BuildSampleFull(d, cubes, 1)
	if err != nil {
		log.Fatal(err)
	}
	factory := func(rng *rand.Rand) train.Model {
		return train.NewMLPTransformer(rng, len(d.InputVars), 16, 2, len(d.OutputVars), 16)
	}
	_, hist, err := train.Train(context.Background(), factory, ex, train.Config{
		Epochs: 10, Batch: 4, Seed: 10, Normalize: true, Meter: meterTrain,
	})
	if err != nil {
		log.Fatal(err)
	}

	// T3: evaluate and report, Fig. 8 style.
	rep := energy.Report{
		Label:        "SST-P1F4/Hmaxent-Xmaxent",
		SampleJoules: meterSample.Joules(),
		TrainJoules:  meterTrain.Joules(),
		EvalLoss:     hist.FinalLoss,
	}
	fmt.Printf("T2: trained %d-parameter MLP-Transformer for %d epochs\n", hist.Params, hist.Epochs)
	fmt.Println("T3:", sickle.EnergyReportString(rep))
}
