package shard

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs/events"
	"repro/internal/serve"
	"repro/pkg/api"
	"repro/pkg/client"
)

// newTestRouterK is newTestRouter with an owner-set size.
func newTestRouterK(t *testing.T, urls []string, k int) *Router {
	t.Helper()
	rt, err := NewRouter(Config{
		URLs:        urls,
		ProbeEvery:  25 * time.Millisecond,
		FailAfter:   2,
		MaxFailover: 2,
		Replication: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestShardReplicatedKeyedSubmitNoDuplicateOnFailover is the regression
// test for the fleet-level idempotency hole: with K=2, a keyed submission
// is copied to both owners, and when the primary dies inside the failover
// window — dead but not yet ejected, the exact window the old router
// turned into a duplicate — a resubmission of the same key is answered
// from the surviving owner's copy instead of spawning a second job.
func TestShardReplicatedKeyedSubmitNoDuplicateOnFailover(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()

	reps := make([]*serve.InProc, 3)
	urls := make([]string, 3)
	for i := range reps {
		reps[i] = startReplica(t, "", ckpt)
		urls[i] = reps[i].URL
	}
	// No prober: the dead primary stays on the ring, so the resubmission
	// must survive on the owner-set consult alone.
	rt := newTestRouterK(t, urls, 2)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		for _, p := range reps {
			if p != nil {
				p.Close(ctx)
			}
		}
	}()
	c := client.New(ts.URL, client.WithRetry(0, 0))

	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	key := api.NewIdempotencyKey()
	req := api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &sub, IdempotencyKey: key}

	owners := rt.ReplicaSet().Sequence(subsampleKey(&sub), 2)
	if len(owners) != 2 {
		t.Fatalf("owner set has %d members, want 2", len(owners))
	}
	idxOf := func(u string) int {
		for i, p := range reps {
			if p.URL == u {
				return i
			}
		}
		t.Fatalf("no in-proc replica at %s", u)
		return -1
	}
	primaryIdx := idxOf(owners[0].URL)
	secondary := reps[idxOf(owners[1].URL)]

	holdsKey := func(p *serve.InProc) int {
		n := 0
		for _, j := range p.Server.Jobs().List() {
			if j.IdempotencyKey == key {
				n++
			}
		}
		return n
	}

	job, err := c.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("keyed submit: %v", err)
	}
	if _, rid := splitJobID(job.ID); rid != owners[0].ID {
		t.Fatalf("job %q not admitted by the primary owner %s", job.ID, owners[0].ID)
	}
	// The submit fan-out already placed a copy under the same key on the
	// second owner — the redundancy the failover below relies on.
	if n := holdsKey(secondary); n != 1 {
		t.Fatalf("secondary owner holds %d copies of the key after submit, want 1", n)
	}

	reps[primaryIdx].Kill()
	reps[primaryIdx] = nil

	again, err := c.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("keyed resubmit with dead primary = %v, want owner-set dedup hit", err)
	}
	if again.IdempotencyKey != key {
		t.Fatalf("resubmit answered job without the key: %+v", again)
	}
	if _, rid := splitJobID(again.ID); rid != owners[1].ID {
		t.Fatalf("resubmit answered by %q, want the surviving owner %s", again.ID, owners[1].ID)
	}
	// Exactly one job fleet-wide carries the key: the resubmission was a
	// dedup hit, not a second job on the survivor.
	total := 0
	for _, p := range reps {
		if p != nil {
			total += holdsKey(p)
		}
	}
	if total != 1 {
		t.Fatalf("fleet holds %d jobs under the key, want exactly 1", total)
	}
	if got := rt.Metrics().OwnerDedupHitsTotal(); got != 1 {
		t.Fatalf("owner dedup hit counter = %d, want 1", got)
	}
	dedups := rt.Journal().Events(0, events.TypeDedupHit, time.Time{})
	found := false
	for _, e := range dedups {
		if e.Attrs["kind"] == "owner_set" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no owner_set dedup_hit event in the journal: %+v", dedups)
	}

	// The fleet listing collapses the replicated copies into one logical
	// job, and the surviving copy finishes and serves its result.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("fleet listing: %v", err)
	}
	withKey := 0
	for _, j := range jobs {
		if j.IdempotencyKey == key {
			withKey++
		}
	}
	if withKey != 1 {
		t.Fatalf("fleet listing shows %d jobs under the key, want 1", withKey)
	}
	if byKey, err := c.JobByKey(ctx, key); err != nil || byKey.IdempotencyKey != key {
		t.Fatalf("JobByKey through router = %+v, %v", byKey, err)
	}
	done, err := c.WaitJob(ctx, again.ID, 5*time.Millisecond)
	if err != nil || done.State != api.JobSucceeded {
		t.Fatalf("surviving copy = %+v, %v", done, err)
	}
	if res, err := c.JobResult(ctx, again.ID); err != nil || res.Subsample == nil {
		t.Fatalf("result from surviving copy = %+v, %v", res, err)
	}
}

// TestShardReplicatedReadFailsOverToCopy covers the read path of the owner
// set: a keyed job's status stays readable under its original client-facing
// ID while the replica that admitted it is dead but not yet ejected.
func TestShardReplicatedReadFailsOverToCopy(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()

	reps := make([]*serve.InProc, 3)
	urls := make([]string, 3)
	for i := range reps {
		reps[i] = startReplica(t, "", ckpt)
		urls[i] = reps[i].URL
	}
	rt := newTestRouterK(t, urls, 2)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		for _, p := range reps {
			if p != nil {
				p.Close(ctx)
			}
		}
	}()
	c := client.New(ts.URL, client.WithRetry(0, 0))

	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	req := api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &sub,
		IdempotencyKey: api.NewIdempotencyKey()}
	owners := rt.ReplicaSet().Sequence(subsampleKey(&sub), 2)
	job, err := c.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("keyed submit: %v", err)
	}
	if done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil || done.State != api.JobSucceeded {
		t.Fatalf("job before the crash = %+v, %v", done, err)
	}

	for i, p := range reps {
		if p.URL == owners[0].URL {
			p.Kill()
			reps[i] = nil
		}
	}
	// Same client-facing ID, primary dead and still on the ring: the
	// router re-finds the copy by key on the surviving owner.
	got, err := c.Job(ctx, job.ID)
	if err != nil {
		t.Fatalf("sticky read with dead primary = %v, want copy fallback", err)
	}
	if got.State != api.JobSucceeded {
		t.Fatalf("copy state = %v, want succeeded", got.State)
	}
	if _, rid := splitJobID(got.ID); rid != owners[1].ID {
		t.Fatalf("read served by %q, want the surviving owner %s", got.ID, owners[1].ID)
	}
}

// TestShardAdminJoinPrefetchAndDrain exercises the elastic control plane
// end to end: membership listing, joining a bare backend (which must be
// warm-prefetched with the fleet's model catalog before taking traffic),
// rolling-drain removal with sticky reads surviving the replica's
// retirement, and the rebalance trail in metrics and events.
func TestShardAdminJoinPrefetchAndDrain(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))

	a := startReplica(t, "", ckpt)
	b := startReplica(t, "", ckpt)
	rt := newTestRouterK(t, []string{a.URL, b.URL}, 2)
	rt.Start()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		rt.Shutdown(ctx)
		a.Close(ctx)
		b.Close(ctx)
	}()
	c := client.New(ts.URL)

	mem, err := c.AdminReplicas(ctx)
	if err != nil {
		t.Fatalf("admin listing: %v", err)
	}
	if mem.Replication != 2 || len(mem.Replicas) != 2 {
		t.Fatalf("membership = %+v, want 2 replicas at K=2", mem)
	}

	// Join a backend with no models: admission must carry the catalog over
	// first, so the newcomer never serves a cold cache.
	fresh, err := serve.StartInProc(serve.Config{MaxBatch: 4, Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close(ctx)
	joined, err := c.AdminJoinReplica(ctx, fresh.URL)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if len(joined.PrefetchedModels) != 1 || joined.PrefetchedModels[0] != "m" {
		t.Fatalf("prefetched = %v, want [m]", joined.PrefetchedModels)
	}
	if !joined.Replica.Up || joined.Replica.ID == "" {
		t.Fatalf("joined replica = %+v, want admitted", joined.Replica)
	}
	if _, err := client.New(fresh.URL).Infer(ctx, &api.InferRequest{
		Model: "m", Items: []api.InferItem{randomItem(rng)}}); err != nil {
		t.Fatalf("newcomer cannot serve the prefetched model: %v", err)
	}
	if mem, _ = c.AdminReplicas(ctx); len(mem.Replicas) != 3 {
		t.Fatalf("membership after join = %+v, want 3 replicas", mem)
	}
	if h, err := c.Health(ctx); err != nil || h.Replication != 2 {
		t.Fatalf("healthz = %+v, %v; want Replication 2", h, err)
	}

	// A duplicate join is refused.
	if _, err := c.AdminJoinReplica(ctx, fresh.URL); api.AsError(err).Code != api.CodeInvalidArgument {
		t.Fatalf("duplicate join = %v, want invalid_argument", err)
	}

	// Run a job to completion, then drain the replica that admitted it:
	// the member leaves, but its sticky job stays readable.
	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 2}
	job, err := c.SubmitJob(ctx, &api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &sub})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil || done.State != api.JobSucceeded {
		t.Fatalf("job = %+v, %v", done, err)
	}
	_, rid := splitJobID(job.ID)
	drained, err := c.AdminDrainReplica(ctx, rid, false)
	if err != nil {
		t.Fatalf("drain %s: %v", rid, err)
	}
	if drained.Replica.ID != rid {
		t.Fatalf("drained %+v, want %s", drained.Replica, rid)
	}
	mem, err = c.AdminReplicas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Replicas) != 2 {
		t.Fatalf("membership after drain = %+v, want 2 replicas", mem)
	}
	for _, r := range mem.Replicas {
		if r.ID == rid {
			t.Fatalf("drained replica %s still in the membership", rid)
		}
	}
	if got, err := c.Job(ctx, job.ID); err != nil || got.State != api.JobSucceeded {
		t.Fatalf("sticky read after retirement = %+v, %v", got, err)
	}
	if res, err := c.JobResult(ctx, job.ID); err != nil || res.Subsample == nil {
		t.Fatalf("sticky result after retirement = %+v, %v", res, err)
	}

	if _, err := c.AdminDrainReplica(ctx, "r99", false); api.AsError(err).Code != api.CodeNotFound {
		t.Fatalf("drain of unknown replica = %v, want not_found", err)
	}

	// The join and the leave both left a rebalance trail.
	if n := rt.Metrics().RebalancesTotal(); n < 2 {
		t.Fatalf("rebalances counter = %d, want >= 2 (join + leave)", n)
	}
	for _, typ := range []events.Type{events.TypeReplicaJoin, events.TypeReplicaDrain,
		events.TypeReplicaLeave, events.TypeRebalance} {
		if len(rt.Journal().Events(0, typ, time.Time{})) == 0 {
			t.Fatalf("no %s event in the journal", typ)
		}
	}
}
