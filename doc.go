// Package repro is SICKLE-Go: a pure-Go reproduction of "Intelligent
// Sampling of Extreme-Scale Turbulence Datasets for Accurate and Efficient
// Spatiotemporal Model Training" (Brewer et al., SC 2025).
//
// The library lives under internal/: sampling (the paper's MaxEnt/UIPS/
// baseline samplers), synth+cfd2d+cfd3d (synthetic DNS dataset analogues),
// nn+train (the neural-network stack and Table 2 architectures), minimpi
// (goroutine message passing), energy (counter-based energy model), sickle
// (the experiment harness regenerating every paper table/figure), serve
// (the online subsystem: micro-batched surrogate inference and LRU-cached
// subsampling behind an HTTP API, served by cmd/sickle-serve and
// load-tested by cmd/sickle-bench -serve), shard (the scaling tier: a
// consistent-hash router over N serve backends with health-probe
// ejection/re-admission, bounded failover, scatter-gather listings and
// sticky job routing, served by cmd/sickle-shard and smoke-tested by
// cmd/sickle-bench -serve URL -shard), and stream (the in-situ
// subsystem: solver-coupled streaming subsampling under a bounded snapshot
// window with collective sketch merges and sharded .skl output, driven by
// cmd/sickle-stream and benchmarked by cmd/sickle-bench -stream). See
// README.md.
//
// Observability is one shared substrate, internal/obs: a unified metrics
// registry rendering lint-clean Prometheus text exposition with
// le-bucketed latency histograms, a bounded trace ring behind
// /debug/traces endpoints on every tier (trace identity and the
// X-Sickle-Trace header live in pkg/api, so one client request through
// the router reads as one trace with routing, queue, and execute spans),
// runtime/build/pool gauges, an exposition linter (also a CI gate via
// cmd/sickle-bench -lintmetrics), and the structured leveled logger
// internal/obs/log shared by the binaries, with per-call-site rate
// limiting on repeated warn/error floods (README "Observability").
//
// On top of that substrate sits the flight recorder (README "Operating
// sickle"): internal/obs/tsdb samples each tier's registry into a
// fixed-memory ring history behind GET /debug/history; internal/obs/slo
// evaluates declarative objectives (per-route p-latency, availability,
// queue depth) with multi-window burn rates, exports sickle_slo_* gauges,
// serves GET /debug/slo, and flips /healthz to "degraded" — which the
// shard router deprioritizes in failover order without ejecting; and
// internal/obs/events journals operational transitions (failover,
// ejection/re-admission, hot-swap, job panics, backpressure stalls, SLO
// breaches) into a bounded ring behind GET /debug/events, cross-linked to
// traces. The router scatter-gathers every replica's history and journal
// into one fleet view, and cmd/sickle-top renders it as a live terminal
// dashboard (internal/obs/top; -once emits one JSON snapshot for CI).
//
// The public surface lives under pkg/: api (the versioned wire contract —
// request/response types, the typed error envelope with machine-readable
// codes, job types, version negotiation) and client (the Go SDK: typed
// methods with per-call contexts, retry-with-backoff on overloaded, job
// submit/wait/cancel helpers). The service is context-first end to end:
// request and job contexts reach the batcher queues, replica acquisition,
// the cache, and the sampling/training loops, so DELETE /v2/jobs/{id}
// stops a subsample between cube batches and a training run between
// epochs. /v1 remains as a frozen byte-compatible shim (README "API").
//
// All of these share the tensor package's kernel engine: a persistent
// worker pool (tensor.Pool) with a deterministic ParallelFor, a
// cache-blocked transpose-free matmul family, and a size-classed tensor
// workspace (Get/Put). Every pooled kernel is bit-identical to its serial
// reference — asserted by parity tests — and cmd/sickle-bench -kernels
// tracks throughput and pooled÷serial speedups in BENCH_kernels.json,
// which CI gates against the committed baseline (README "Performance").
//
// The contracts above are machine-enforced: cmd/sicklevet is a six-analyzer
// static-analysis suite (closecheck, ctxfirst, apierr, metricname, ologonly,
// detparallel) over a stdlib-only go/analysis-style framework in
// internal/analysis, runnable standalone or via go vet -vettool, and run by
// CI as a blocking zero-diagnostics gate. Deliberate exceptions annotate
// with //sicklevet:ignore <analyzer> <reason> (README "Development: static
// analysis").
package repro
