package train

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"repro/internal/energy"
	"repro/internal/minimpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/pkg/api"
)

// Config mirrors the artifact's train.py options.
type Config struct {
	Epochs    int     // default 50
	Batch     int     // default 16 (paper's setting)
	LR        float64 // default 0.001 (paper's setting)
	Patience  int     // default 20 (paper's LR-plateau patience)
	TestFrac  float64 // default 0.1 (paper's 90:10 split)
	Seed      int64
	Ranks     int // data-parallel ranks, default 1
	Meter     *energy.Meter
	CostModel minimpi.CostModel
	// Normalize standardizes inputs and targets from training statistics.
	Normalize bool
	// ClipNorm caps the global gradient norm before each step (default 5;
	// set negative to disable). Guards LSTM runs against the occasional
	// exploding-gradient divergence.
	ClipNorm float64
	Verbose  bool
	// Progress, when non-nil, is called after every completed epoch with
	// (epochsDone, totalEpochs) — the hook serve's job manager uses to
	// report training progress.
	Progress func(done, total int)
	// Metrics, when non-nil, receives sickle_train_* series: epoch/batch
	// timing histograms, the current epoch gauge, and live loss gauges.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one trace per Train call — a train:run
	// root span with a train:epoch child per epoch. When the caller's ctx
	// already carries a trace (a training job submitted over the API), the
	// spans join it instead of minting a fresh one.
	Tracer *obs.Tracer
}

func (c *Config) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.LR == 0 {
		c.LR = 0.001
	}
	if c.Patience <= 0 {
		c.Patience = 20
	}
	if c.TestFrac <= 0 {
		c.TestFrac = 0.1
	}
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
}

// History records the training run.
type History struct {
	TrainLoss []float64
	TestLoss  []float64
	FinalLoss float64 // the artifact's "Evaluation on test set"
	Epochs    int
	Params    int
	// TraceID identifies the run's trace when Config.Tracer was set.
	TraceID string
}

// trainInstruments bundles the optional sickle_train_* metric handles;
// nil handles (no registry) no-op.
type trainInstruments struct {
	epochSec *obs.Histogram
	batchSec *obs.Histogram
	batches  *obs.Counter
	epoch    *obs.Gauge
	loss     *obs.Gauge
	testLoss *obs.Gauge
}

// epochBuckets span sub-second toy fits through multi-minute DNS epochs.
var epochBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}

func newTrainInstruments(reg *obs.Registry) *trainInstruments {
	ins := &trainInstruments{}
	if reg == nil {
		return ins
	}
	ins.epochSec = reg.Histogram("sickle_train_epoch_seconds",
		"Wall-clock time per training epoch.", epochBuckets).With()
	ins.batchSec = reg.Histogram("sickle_train_batch_seconds",
		"Wall-clock time per optimizer step (one batch).", nil).With()
	ins.batches = reg.Counter("sickle_train_batches_total",
		"Optimizer steps taken.").With()
	ins.epoch = reg.Gauge("sickle_train_epoch",
		"Epochs completed in the current run.").With()
	ins.loss = reg.Gauge("sickle_train_loss",
		"Mean training loss of the last completed epoch.").With()
	ins.testLoss = reg.Gauge("sickle_train_test_loss",
		"Test-set loss after the last completed epoch.").With()
	return ins
}

// ModelFactory builds a fresh model replica from a seed; DDP requires
// identically initialized replicas per rank.
type ModelFactory func(rng *rand.Rand) Model

// chargeTraining applies the Eq. 3 training-cost model to the meter:
// flops ≈ 6·params per example-element pass (2 forward + 4 backward), and
// the batch's tensors move through memory once per pass.
func chargeTraining(m *energy.Meter, params, batchElems int) {
	if m == nil {
		return
	}
	m.AddFlops(int64(6) * int64(params) * int64(batchElems) / 64)
	m.AddBytes(int64(batchElems)*8*3 + int64(params)*8)
}

// Train fits a model on the examples. With cfg.Ranks > 1 it runs
// synchronous data-parallel training over minimpi: each rank owns an
// identically seeded replica, computes gradients on its shard of every
// batch, and gradients are averaged with Allreduce before each optimizer
// step — torch DistributedDataParallel's algorithm.
//
// The context is checked before every batch and every epoch; cancellation
// abandons the run and returns ctx.Err() (the partially trained model is
// not returned — a canceled run has no well-defined artifact).
func Train(ctx context.Context, factory ModelFactory, examples []Example, cfg Config) (Model, *History, error) {
	cfg.defaults()
	if len(examples) < 2 {
		return nil, nil, fmt.Errorf("train: need at least 2 examples, got %d", len(examples))
	}
	trainSet, testSet := SplitTrainTest(examples, cfg.TestFrac, cfg.Seed)
	if cfg.Normalize {
		// Normalize copies: callers may reuse the same examples across
		// runs (replicates, hyperparameter search), so mutating their
		// tensors would silently re-normalize already-normalized data.
		trainSet = cloneExamples(trainSet)
		testSet = cloneExamples(testSet)
		normalizeExamples(trainSet, testSet)
	}

	models := make([]Model, cfg.Ranks)
	for r := range models {
		models[r] = factory(rand.New(rand.NewSource(cfg.Seed + 1)))
	}
	params := nn.ParamCount(models[0])

	opts := make([]*nn.Adam, cfg.Ranks)
	scheds := make([]*nn.PlateauScheduler, cfg.Ranks)
	for r := range opts {
		opts[r] = nn.NewAdam(cfg.LR)
		scheds[r] = nn.NewPlateauScheduler(opts[r], cfg.Patience, 0.5)
	}

	hist := &History{Params: params}
	order := rand.New(rand.NewSource(cfg.Seed + 2))

	ins := newTrainInstruments(cfg.Metrics)
	tracer := cfg.Tracer
	// Join the caller's trace (training jobs submitted over the API carry
	// one) or mint a fresh one for standalone runs.
	tc, traced := api.TraceFrom(ctx)
	if !traced {
		tc = api.TraceContext{TraceID: api.NewTraceID()}
	}
	rootSpanID := api.NewSpanID()
	runStart := time.Now()
	defer func() {
		tracer.Record(obs.Span{
			TraceID: tc.TraceID, SpanID: rootSpanID, ParentID: tc.SpanID,
			Name: "train:run", Start: runStart,
			Seconds: time.Since(runStart).Seconds(),
			Attrs:   map[string]string{"params": strconv.Itoa(params)},
		})
	}()
	if tracer != nil {
		hist.TraceID = tc.TraceID
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		epochStart := time.Now()
		perm := order.Perm(len(trainSet))
		epochLoss := 0.0
		nBatches := 0
		for b0 := 0; b0 < len(perm); b0 += cfg.Batch {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			b1 := b0 + cfg.Batch
			if b1 > len(perm) {
				b1 = len(perm)
			}
			batch := make([]Example, 0, b1-b0)
			for _, p := range perm[b0:b1] {
				batch = append(batch, trainSet[p])
			}
			batchStart := time.Now()
			loss := trainBatch(models, opts, batch, cfg)
			ins.batchSec.Observe(time.Since(batchStart).Seconds())
			ins.batches.Inc()
			epochLoss += loss
			nBatches++
			chargeTraining(cfg.Meter, params, len(batch)*batch[0].Input.Len())
		}
		epochLoss /= float64(nBatches)
		testLoss := Evaluate(models[0], testSet)
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		hist.TestLoss = append(hist.TestLoss, testLoss)
		for r := range scheds {
			scheds[r].Observe(testLoss)
		}
		elapsed := time.Since(epochStart).Seconds()
		ins.epochSec.Observe(elapsed)
		ins.epoch.Set(float64(epoch + 1))
		ins.loss.Set(epochLoss)
		ins.testLoss.Set(testLoss)
		tracer.Record(obs.Span{
			TraceID: tc.TraceID, SpanID: api.NewSpanID(), ParentID: rootSpanID,
			Name: "train:epoch", Start: epochStart, Seconds: elapsed,
			Attrs: map[string]string{
				"epoch":   strconv.Itoa(epoch),
				"batches": strconv.Itoa(nBatches),
			},
		})
		if cfg.Verbose {
			// Stderr, not stdout: verbose progress is diagnostics, and a
			// library must not claim the process's stdout.
			fmt.Fprintf(os.Stderr, "epoch %3d  train %.6f  test %.6f  lr %.2g\n",
				epoch, epochLoss, testLoss, opts[0].LR)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch+1, cfg.Epochs)
		}
	}
	hist.Epochs = cfg.Epochs
	hist.FinalLoss = Evaluate(models[0], testSet)
	return models[0], hist, nil
}

// trainBatch runs one synchronous step. Ranks shard the batch; each
// computes local gradients; Allreduce averages them; every rank applies the
// identical update.
func trainBatch(models []Model, opts []*nn.Adam, batch []Example, cfg Config) float64 {
	ranks := len(models)
	if ranks == 1 {
		m := models[0]
		nn.ZeroGrads(m)
		in, tgt := stackBatch(batch)
		pred := m.Forward(in)
		g := tensor.Get(pred.Shape...)
		loss := nn.MSELossInto(g, pred, tgt)
		m.Backward(g)
		// Recycle the step's batch and gradient buffers: backward is done,
		// so nothing reads them again before the next stack overwrites.
		tensor.Put(g)
		tensor.Put(in)
		tensor.Put(tgt)
		if cfg.ClipNorm > 0 {
			nn.ClipGradNorm(m, cfg.ClipNorm)
		}
		opts[0].Step(m)
		return loss
	}

	losses := make([]float64, ranks)
	shardSizes := make([]float64, ranks)
	minimpi.Run(ranks, cfg.CostModel, func(c *minimpi.Comm) {
		r := c.Rank()
		m := models[r]
		nn.ZeroGrads(m)
		lo, hi := c.PartitionRange(len(batch))
		var localLoss float64
		n := hi - lo
		shardSizes[r] = float64(n)
		if n > 0 {
			in, tgt := stackBatch(batch[lo:hi])
			pred := m.Forward(in)
			g := tensor.Get(pred.Shape...)
			loss := nn.MSELossInto(g, pred, tgt)
			// Scale so the allreduced average equals the full-batch
			// gradient: local grads are means over the shard.
			localLoss = loss * float64(n)
			m.Backward(g)
			tensor.Put(g)
			tensor.Put(in)
			tensor.Put(tgt)
			for _, p := range m.Params() {
				p.Grad.Scale(float64(n))
			}
		}
		// Flatten all gradients into one buffer for a single Allreduce,
		// as DDP's gradient bucketing does.
		var flat []float64
		for _, p := range m.Params() {
			flat = append(flat, p.Grad.Data...)
		}
		flat = append(flat, localLoss)
		c.Allreduce(flat, minimpi.Sum)
		inv := 1 / float64(len(batch))
		off := 0
		for _, p := range m.Params() {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = flat[off+i] * inv
			}
			off += p.Grad.Len()
		}
		losses[r] = flat[off] * inv
		if cfg.ClipNorm > 0 {
			nn.ClipGradNorm(m, cfg.ClipNorm)
		}
		opts[r].Step(m)
	})
	return losses[0]
}

func stackBatch(batch []Example) (in, tgt *tensor.Tensor) {
	ins := make([]*tensor.Tensor, len(batch))
	tgts := make([]*tensor.Tensor, len(batch))
	for i, ex := range batch {
		ins[i] = ex.Input
		tgts[i] = ex.Target
	}
	return stack(ins), stack(tgts)
}

// Evaluate returns the MSE of the model over a set (batch of all examples).
func Evaluate(m Model, set []Example) float64 {
	if len(set) == 0 {
		return 0
	}
	in, tgt := stackBatch(set)
	pred := m.Forward(in)
	g := tensor.Get(pred.Shape...)
	loss := nn.MSELossInto(g, pred, tgt)
	tensor.Put(g)
	tensor.Put(in)
	tensor.Put(tgt)
	return loss
}

func cloneExamples(set []Example) []Example {
	out := make([]Example, len(set))
	for i, ex := range set {
		out[i] = Example{Input: ex.Input.Clone(), Target: ex.Target.Clone()}
	}
	return out
}

// normalizeExamples standardizes inputs and targets in place using
// statistics of the training inputs/targets (applied to both sets).
func normalizeExamples(trainSet, testSet []Example) {
	stats := func(get func(Example) *tensor.Tensor) (mean, std float64) {
		var s, s2 float64
		var n int
		for _, ex := range trainSet {
			for _, v := range get(ex).Data {
				s += v
				s2 += v * v
				n++
			}
		}
		mean = s / float64(n)
		variance := s2/float64(n) - mean*mean
		if variance <= 0 {
			return mean, 1
		}
		return mean, mSqrt(variance)
	}
	apply := func(get func(Example) *tensor.Tensor, mean, std float64) {
		for _, set := range [][]Example{trainSet, testSet} {
			for _, ex := range set {
				t := get(ex)
				for i := range t.Data {
					t.Data[i] = (t.Data[i] - mean) / std
				}
			}
		}
	}
	im, is := stats(func(e Example) *tensor.Tensor { return e.Input })
	apply(func(e Example) *tensor.Tensor { return e.Input }, im, is)
	tm, ts := stats(func(e Example) *tensor.Tensor { return e.Target })
	apply(func(e Example) *tensor.Tensor { return e.Target }, tm, ts)
}
