// Package cluster implements k-means clustering (full Lloyd iterations with
// k-means++ seeding, plus a MiniBatchKMeans variant) used by SICKLE's MaxEnt
// sampler to discretise the cluster variable before entropy computation.
// The paper uses scikit-learn's MiniBatchKMeans for the same role.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Result holds a fitted clustering.
type Result struct {
	Centroids [][]float64 // k × d
	Labels    []int       // per input point
	Inertia   float64     // sum of squared distances to assigned centroid
	Iters     int
}

// Config controls the clustering run.
type Config struct {
	K         int
	MaxIters  int     // default 100
	Tol       float64 // centroid-shift convergence tolerance, default 1e-6
	BatchSize int     // >0 enables mini-batch updates
	Seed      int64
}

func (c *Config) defaults(n int) {
	if c.MaxIters <= 0 {
		c.MaxIters = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.K > n {
		c.K = n
	}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// seedPlusPlus chooses k initial centroids with the k-means++ strategy:
// each new centroid is drawn with probability proportional to its squared
// distance from the nearest already-chosen centroid.
func seedPlusPlus(pts [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(pts)
	cents := make([][]float64, 0, k)
	first := pts[rng.Intn(n)]
	cents = append(cents, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for i, p := range pts {
		d2[i] = sqDist(p, cents[0])
	}
	for len(cents) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var chosen []float64
		if total <= 0 {
			chosen = pts[rng.Intn(n)]
		} else {
			r := rng.Float64() * total
			idx := n - 1
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= r {
					idx = i
					break
				}
			}
			chosen = pts[idx]
		}
		c := append([]float64(nil), chosen...)
		cents = append(cents, c)
		for i, p := range pts {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return cents
}

func nearest(p []float64, cents [][]float64) (int, float64) {
	best, bestD := 0, math.MaxFloat64
	for j, c := range cents {
		if d := sqDist(p, c); d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

// assignAll computes the nearest centroid (and its squared distance) for
// every point across the kernel pool. Each point's result is independent,
// so the fan-out is bit-identical to a serial loop; callers that accumulate
// (centroid sums, inertia) do so serially in point order afterwards, which
// keeps the whole algorithm deterministic.
func assignAll(pts [][]float64, cents [][]float64, labels []int, d2 []float64) {
	tensor.DefaultPool().ParallelFor(len(pts), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j, dd := nearest(pts[i], cents)
			labels[i] = j
			if d2 != nil {
				d2[i] = dd
			}
		}
	})
}

// KMeans runs Lloyd's algorithm with k-means++ seeding on pts (n points,
// each of equal dimension). When cfg.BatchSize > 0 it uses mini-batch
// updates (Sculley 2010), which is what makes clustering tractable on
// hypercube-sized point sets.
func KMeans(pts [][]float64, cfg Config) (*Result, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("cluster: K must be positive, got %d", cfg.K)
	}
	d := len(pts[0])
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	cfg.defaults(n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents := seedPlusPlus(pts, cfg.K, rng)

	if cfg.BatchSize > 0 && cfg.BatchSize < n {
		miniBatch(pts, cents, cfg, rng)
	} else {
		lloyd(pts, cents, cfg)
	}

	// Final full assignment (parallel), inertia summed in point order.
	labels := make([]int, n)
	d2 := make([]float64, n)
	assignAll(pts, cents, labels, d2)
	inertia := 0.0
	for _, dd := range d2 {
		inertia += dd
	}
	return &Result{Centroids: cents, Labels: labels, Inertia: inertia, Iters: cfg.MaxIters}, nil
}

func lloyd(pts [][]float64, cents [][]float64, cfg Config) {
	n, k, d := len(pts), len(cents), len(pts[0])
	sums := make([][]float64, k)
	counts := make([]int, k)
	for j := range sums {
		sums[j] = make([]float64, d)
	}
	labels := make([]int, n)
	for it := 0; it < cfg.MaxIters; it++ {
		for j := range sums {
			counts[j] = 0
			for x := range sums[j] {
				sums[j][x] = 0
			}
		}
		// Assignment is the O(n·k·d) hot phase — parallel; the centroid
		// sums accumulate serially in point order (deterministic).
		assignAll(pts, cents, labels, nil)
		for i := 0; i < n; i++ {
			j := labels[i]
			counts[j]++
			for x, v := range pts[i] {
				sums[j][x] += v
			}
		}
		shift := 0.0
		for j := range cents {
			if counts[j] == 0 {
				continue // keep empty centroid where it is
			}
			inv := 1 / float64(counts[j])
			for x := range cents[j] {
				nv := sums[j][x] * inv
				dd := nv - cents[j][x]
				shift += dd * dd
				cents[j][x] = nv
			}
		}
		if shift < cfg.Tol*cfg.Tol {
			return
		}
	}
}

// miniBatch performs per-sample centroid updates with a per-centroid
// learning rate 1/count, following the MiniBatchKMeans algorithm.
func miniBatch(pts [][]float64, cents [][]float64, cfg Config, rng *rand.Rand) {
	n := len(pts)
	counts := make([]int, len(cents))
	for it := 0; it < cfg.MaxIters; it++ {
		shift := 0.0
		for b := 0; b < cfg.BatchSize; b++ {
			p := pts[rng.Intn(n)]
			j, _ := nearest(p, cents)
			counts[j]++
			eta := 1 / float64(counts[j])
			for x := range cents[j] {
				dd := eta * (p[x] - cents[j][x])
				cents[j][x] += dd
				shift += dd * dd
			}
		}
		if shift < cfg.Tol*cfg.Tol {
			return
		}
	}
}

// Assign returns the index of the nearest centroid for each point,
// computed across the kernel pool.
func Assign(pts [][]float64, cents [][]float64) []int {
	labels := make([]int, len(pts))
	assignAll(pts, cents, labels, nil)
	return labels
}

// ClusterSizes counts points per cluster given labels and k.
func ClusterSizes(labels []int, k int) []int {
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// Scalar1D is a convenience for clustering a single scalar variable (the
// common KCV case in Table 1): it wraps xs as 1-D points.
func Scalar1D(xs []float64) [][]float64 {
	pts := make([][]float64, len(xs))
	backing := make([]float64, len(xs))
	copy(backing, xs)
	for i := range xs {
		pts[i] = backing[i : i+1 : i+1]
	}
	return pts
}
