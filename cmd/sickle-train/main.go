// sickle-train is the T2 stage of the paper's workflow (the artifact's
// `srun --ntasks-per-node=8 python train.py case.yaml`): it loads a
// subsample file (or re-runs T1), builds examples for the requested
// architecture, trains with data-parallel ranks, and prints the
// "Evaluation on test set" loss and total energy.
//
// Usage:
//
//	sickle-train -dataset SST-P1F4 -arch MLP_Transformer -epochs 20 -n 2
//	sickle-train -in sub.skl -dataset SST-P1F4 -arch MLP_Transformer
//	sickle-train -dataset SST-P1F4 -arch LSTM -ckpt-out model.sknn   # then serve it
//
//sicklevet:file-ignore ologonly the training summary is the CLI result, printed once after the run exits
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/energy"
	"repro/internal/nn"
	"repro/internal/obs"
	olog "repro/internal/obs/log"
	"repro/internal/obs/tsdb"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/train"
	"repro/internal/tune"
)

func main() {
	dataset := flag.String("dataset", "SST-P1F4", "dataset name")
	arch := flag.String("arch", "MLP_Transformer", "LSTM | MLP_Transformer | CNN_Transformer | MATEY")
	in := flag.String("in", "", "subsample file from sickle-subsample (optional)")
	method := flag.String("method", "maxent", "sampler when -in is not given")
	epochs := flag.Int("epochs", 20, "training epochs")
	batch := flag.Int("batch", 8, "batch size")
	window := flag.Int("window", 1, "input time window")
	ranks := flag.Int("n", 1, "data-parallel ranks")
	seed := flag.Int64("seed", 1, "seed")
	scaleStr := flag.String("scale", "small", "dataset scale")
	doTune := flag.Bool("tune", false, "run hyperparameter search first (the paper's --tune / DeepHyper analogue)")
	ckptOut := flag.String("ckpt-out", "", "save the trained model checkpoint here (servable by sickle-serve)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines")
	debugAddr := flag.String("debug-addr", "", "pprof + metrics + traces listen address for the run (\"\" = off)")
	flag.Parse()

	lvl, lok := olog.ParseLevel(*logLevel)
	lg := olog.New(os.Stderr, lvl, *logJSON)
	if !lok {
		lg.Warn("unknown -log-level, using info", "given", *logLevel)
	}
	fatal := func(msg string, err error) {
		lg.Error(msg, "err", err)
		os.Exit(1)
	}

	// The run always records epoch/batch metrics and spans; -debug-addr
	// additionally serves them (plus pprof) live during long fits.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	tracer := obs.NewTracer("train", 0)
	tracer.RegisterDropped(reg)
	if *debugAddr != "" {
		history := tsdb.NewStore("train", reg, 0, 0)
		history.Start()
		defer history.Stop()
		obs.ServeDebug(*debugAddr, reg, tracer, func(err error) {
			lg.Error("debug listener", "err", err)
		}, history)
		lg.Info("debug endpoints up", "addr", *debugAddr)
	}

	scale := sickle.Small
	if *scaleStr == "large" {
		scale = sickle.Large
	}
	d, err := sickle.BuildDataset(*dataset, scale)
	if err != nil {
		fatal("build dataset", err)
	}

	var cubes []sampling.CubeSample
	meterSample := energy.NewMeter()
	if *in != "" {
		cubes, err = sickle.LoadCubeSamples(*in)
	} else {
		f := d.Snapshots[0]
		m := *method
		if strings.EqualFold(*arch, "CNN_Transformer") {
			m = "full"
		}
		pcfg := sampling.PipelineConfig{
			Hypercubes: "maxent", Method: m,
			NumClusters: 5, Seed: *seed, Meter: meterSample,
		}
		if f.Is2D() {
			// 2-D cases sample the whole plane (the OF2D workflow).
			pcfg.CubeSx, pcfg.CubeSy, pcfg.CubeSz = f.Nx, f.Ny, 1
			pcfg.NumHypercubes = 1
			pcfg.NumSamples = f.NPoints() / 10
		} else {
			edge := 16
			if f.Nz < edge {
				edge = f.Nz
			}
			pcfg.CubeSx, pcfg.CubeSy, pcfg.CubeSz = edge, edge, edge
			pcfg.NumHypercubes = 2
			pcfg.NumSamples = edge * edge * edge / 10
		}
		cubes, err = sampling.SubsampleDataset(context.Background(), d, pcfg)
	}
	if err != nil {
		fatal("subsample", err)
	}

	meterTrain := energy.NewMeter()
	inV, outV := len(d.InputVars), len(d.OutputVars)
	var ex []train.Example
	edge := cubes[0].Cube.Sx

	// The spec is both the model factory and, with -ckpt-out, the recipe a
	// serving process needs to rebuild checkpoint-compatible replicas.
	spec := train.ArchSpec{Arch: strings.ToLower(*arch), InDim: inV, Hidden: 16, Heads: 2, OutDim: outV, Edge: edge}
	switch spec.Arch {
	case "lstm":
		ex, err = train.BuildSampleSingle(d, cubes, *window)
		if err != nil {
			fatal("build examples", err)
		}
		spec.InDim, spec.OutDim, spec.Edge = ex[0].Input.Dim(1), 1, 0
	case "mlp_transformer":
		ex, err = train.BuildSampleFull(d, cubes, *window)
	case "cnn_transformer", "matey":
		ex, err = train.BuildFullFull(d, cubes, *window)
	}
	if err != nil {
		fatal("build examples", err)
	}
	if err := spec.Validate(); err != nil {
		fatal("validate arch spec", err)
	}
	factory := spec.Factory()

	lr := 0.001
	if *doTune {
		// Hidden width only applies to the LSTM; for the other
		// architectures the factory ignores it and the search tunes LR
		// and batch.
		factoryFor := func(hidden int) train.ModelFactory {
			if spec.Arch == "lstm" {
				s := spec
				s.Hidden = hidden
				return s.Factory()
			}
			return factory
		}
		trials, err := tune.Search(context.Background(), factoryFor, ex, tune.Space{}, tune.Config{
			Trials: 6, RungEpochs: 3, FinalEpochs: *epochs / 2, Seed: *seed, Ranks: *ranks,
		})
		if err != nil {
			fatal("hyperparameter search", err)
		}
		fmt.Println("tuning winner:", tune.Best(trials))
		lr = trials[0].LR
		*batch = trials[0].Batch
	}

	model, hist, err := train.Train(context.Background(), factory, ex, train.Config{
		LR:     lr,
		Epochs: *epochs, Batch: *batch, Seed: *seed, Ranks: *ranks,
		Normalize: true, Meter: meterTrain, Verbose: true,
		CostModel: sickle.DefaultCostModel(),
		Metrics:   reg, Tracer: tracer,
	})
	if err != nil {
		fatal("train", err)
	}

	if *ckptOut != "" {
		if err := nn.SaveCheckpoint(*ckptOut, model); err != nil {
			fatal("save checkpoint", err)
		}
		specJSON, _ := json.Marshal(spec)
		fmt.Printf("wrote checkpoint %s (arch spec: %s, input shape %v)\n",
			*ckptOut, specJSON, ex[0].Input.Shape)
	}
	fmt.Printf("model: %s (%d parameters), %d examples, %d ranks\n",
		model.Name(), hist.Params, len(ex), *ranks)
	fmt.Printf("Evaluation on test set: %.6f\n", hist.FinalLoss)
	fmt.Printf("observability: trace %s (%d epoch spans recorded)\n",
		hist.TraceID, hist.Epochs)
	fmt.Printf("sampling  %s\n", meterSample.String())
	fmt.Printf("training  %s\n", meterTrain.String())
	meterSample.Add(meterTrain)
	fmt.Printf("combined  %s\n", meterSample.String())
}
