// Package sampling implements SICKLE's core contribution: the pluggable
// subsampling strategies of paper §4 — random, Latin hypercube, stratified,
// uniform-in-phase-space (UIPS), and the two-phase maximum-entropy (MaxEnt)
// method — together with MaxEnt hypercube selection, temporal snapshot
// selection, and a minimpi-parallel driver.
//
// All point samplers consume a Data view (feature matrix + the scalar
// "K-means cluster variable" of Table 1) and return indices into it, so the
// same machinery runs on raw snapshots, extracted hypercubes, or arbitrary
// point clouds.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/energy"
	"repro/internal/tensor"
)

// Data is the point-cloud view a sampler operates on.
type Data struct {
	// Features is the n×d matrix of input variables (Table 1's Input
	// column) used for phase-space methods.
	Features [][]float64
	// ClusterVar is the scalar per point driving K-means-based methods
	// (Table 1's KCV column). When nil, the first feature column is used.
	ClusterVar []float64
}

// N returns the number of points.
func (d *Data) N() int { return len(d.Features) }

// KCV returns the cluster variable, falling back to feature column 0.
func (d *Data) KCV() []float64 {
	if d.ClusterVar != nil {
		return d.ClusterVar
	}
	out := make([]float64, len(d.Features))
	for i, p := range d.Features {
		out[i] = p[0]
	}
	return out
}

// PointSampler selects n point indices from a Data view.
type PointSampler interface {
	Name() string
	SelectPoints(d *Data, n int, rng *rand.Rand) []int
}

// chargeSampling charges m for a sampler pass that touched points×dims
// values with the given extra per-value op count.
func chargeSampling(m *energy.Meter, points, dims int, opsPerValue int64) {
	if m == nil {
		return
	}
	vals := int64(points) * int64(dims)
	m.AddFlops(vals * opsPerValue)
	m.AddBytes(vals * 8)
}

// Random selects n points uniformly without replacement — the paper's
// baseline that "performs quite well in many scenarios" (§7).
type Random struct {
	Meter *energy.Meter
}

// Name implements PointSampler.
func (Random) Name() string { return "random" }

// SelectPoints implements PointSampler.
func (r Random) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	validateRequest(d, n)
	total := d.N()
	if n >= total {
		return allIndices(total)
	}
	idx := rng.Perm(total)[:n]
	sort.Ints(idx)
	chargeSampling(r.Meter, n, dims(d), 1)
	return idx
}

// Full returns every point — the paper's "full" baseline (densest feasible
// hypercubes, §4).
type Full struct {
	Meter *energy.Meter
}

// Name implements PointSampler.
func (Full) Name() string { return "full" }

// SelectPoints implements PointSampler.
func (f Full) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	chargeSampling(f.Meter, d.N(), dims(d), 1)
	return allIndices(d.N())
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func dims(d *Data) int {
	if len(d.Features) == 0 {
		return 1
	}
	return len(d.Features[0])
}

// normalizedCopy returns a [0,1]-scaled copy of the features (samplers must
// not mutate caller data).
func normalizedCopy(pts [][]float64) [][]float64 {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	backing := make([]float64, len(pts)*d)
	out := make([][]float64, len(pts))
	for i, p := range pts {
		row := backing[i*d : (i+1)*d]
		copy(row, p)
		out[i] = row
	}
	normalizeInPlace(out)
	return out
}

func normalizeInPlace(pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	d := len(pts[0])
	for j := 0; j < d; j++ {
		// Min/max are order-independent, so the scan fans out over the
		// kernel pool; the rescale writes each point exactly once.
		lo, hi := pts[0][j], pts[0][j]
		var mu sync.Mutex
		tensor.DefaultPool().ParallelFor(len(pts), 4096, func(p0, p1 int) {
			clo, chi := pts[p0][j], pts[p0][j]
			for _, p := range pts[p0:p1] {
				if p[j] < clo {
					clo = p[j]
				}
				if p[j] > chi {
					chi = p[j]
				}
			}
			mu.Lock()
			if clo < lo {
				lo = clo
			}
			if chi > hi {
				hi = chi
			}
			mu.Unlock()
		})
		r := hi - lo
		tensor.DefaultPool().ParallelFor(len(pts), 4096, func(p0, p1 int) {
			for _, p := range pts[p0:p1] {
				if r > 0 {
					p[j] = (p[j] - lo) / r
				} else {
					p[j] = 0
				}
			}
		})
	}
}

// weightedSampleWithoutReplacement draws n distinct indices with
// probability proportional to w, using the Efraimidis-Spirakis exponential
// keys method. Zero/negative weights are treated as tiny but nonzero so
// every item remains reachable when the budget exceeds the positive mass.
func weightedSampleWithoutReplacement(w []float64, n int, rng *rand.Rand) []int {
	type key struct {
		k   float64
		idx int
	}
	if n >= len(w) {
		return allIndices(len(w))
	}
	keys := make([]key, len(w))
	for i, wi := range w {
		if wi <= 0 || math.IsNaN(wi) {
			wi = 1e-300
		}
		// Key = -Exp(1)/w; the n largest keys form a weighted sample.
		keys[i] = key{k: -rng.ExpFloat64() / wi, idx: i}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].k > keys[b].k })
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = keys[i].idx
	}
	sort.Ints(out)
	return out
}

// validateRequest panics on nonsensical sample requests; samplers share it.
func validateRequest(d *Data, n int) {
	if n < 0 {
		panic(fmt.Sprintf("sampling: negative sample count %d", n))
	}
	if d == nil || d.N() == 0 {
		panic("sampling: empty data")
	}
}
