package sampling

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/minimpi"
	"repro/internal/synth"
)

func smallSST(t testing.TB, snaps int) *grid.Dataset {
	t.Helper()
	d := synth.SSTDataset("SST-TEST", snaps,
		synth.StratifiedConfig{Nx: 32, Ny: 32, Nz: 16, Seed: 101})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSubsampleSnapshotShapes(t *testing.T) {
	d := smallSST(t, 1)
	cfg := PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 3, NumSamples: 100,
		CubeSx: 16, CubeSy: 16, CubeSz: 16,
		NumClusters: 5, Seed: 1,
	}
	out, err := SubsampleSnapshot(context.Background(), d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d cubes, want 3", len(out))
	}
	for _, cs := range out {
		if len(cs.LocalIdx) != 100 {
			t.Fatalf("cube %d: %d samples, want 100", cs.Cube.ID, len(cs.LocalIdx))
		}
		if len(cs.Features) != 100 || len(cs.Targets) != 100 {
			t.Fatal("features/targets length mismatch")
		}
		if len(cs.Features[0]) != len(d.InputVars) {
			t.Fatalf("feature dim %d, want %d", len(cs.Features[0]), len(d.InputVars))
		}
		if len(cs.Targets[0]) != len(d.OutputVars) {
			t.Fatalf("target dim %d, want %d", len(cs.Targets[0]), len(d.OutputVars))
		}
	}
}

func TestSubsampleFullKeepsWholeCubes(t *testing.T) {
	d := smallSST(t, 1)
	cfg := PipelineConfig{
		Hypercubes: "random", Method: "full",
		NumHypercubes: 2, CubeSx: 16, CubeSy: 16, CubeSz: 16, Seed: 2,
	}
	out, err := SubsampleSnapshot(context.Background(), d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range out {
		if len(cs.LocalIdx) != 16*16*16 {
			t.Fatalf("full method kept %d points, want %d", len(cs.LocalIdx), 16*16*16)
		}
	}
}

func TestSubsampleFeatureValuesMatchField(t *testing.T) {
	d := smallSST(t, 1)
	cfg := PipelineConfig{
		Hypercubes: "random", Method: "random",
		NumHypercubes: 1, NumSamples: 50,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, Seed: 3,
	}
	out, err := SubsampleSnapshot(context.Background(), d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := out[0]
	f := d.Snapshots[0]
	flat := cs.Cube.Indices(f)
	for r, li := range cs.LocalIdx {
		for v, name := range d.InputVars {
			if cs.Features[r][v] != f.Var(name)[flat[li]] {
				t.Fatalf("feature mismatch at sample %d var %s", r, name)
			}
		}
		for v, name := range d.OutputVars {
			if cs.Targets[r][v] != f.Var(name)[flat[li]] {
				t.Fatalf("target mismatch at sample %d var %s", r, name)
			}
		}
	}
}

func TestSubsampleCubeTooLarge(t *testing.T) {
	d := smallSST(t, 1)
	cfg := PipelineConfig{CubeSx: 64, CubeSy: 64, CubeSz: 64, Seed: 4}
	if _, err := SubsampleSnapshot(context.Background(), d, 0, cfg); err == nil {
		t.Fatal("expected error for oversized cubes")
	}
}

func TestHMaxEntPrefersInformativeCubes(t *testing.T) {
	// Construct a field where one region has rich multi-modal KCV and the
	// rest is constant: MaxEnt cube selection should pick the rich cubes
	// far more often than uniform selection would.
	f := grid.NewField(64, 16, 16)
	kcv := f.AddVar("q", nil)
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 64; i++ {
				if i < 16 {
					// Rich: bimodal.
					if rng.Float64() < 0.5 {
						kcv[f.Idx(i, j, k)] = 5 + rng.NormFloat64()
					} else {
						kcv[f.Idx(i, j, k)] = -5 + rng.NormFloat64()
					}
				} else {
					kcv[f.Idx(i, j, k)] = 0.01 * rng.NormFloat64()
				}
			}
		}
	}
	cubes := grid.Tile(f, 16, 16, 16) // 4 cubes along x; cube 0 is rich
	richPicks := 0
	trials := 200
	for s := 0; s < trials; s++ {
		sel := HMaxEnt{NumClusters: 4}.SelectCubes(f, cubes, "q", 1, rand.New(rand.NewSource(int64(s))))
		if sel[0].ID == 0 {
			richPicks++
		}
	}
	// Uniform would give ~50 picks (25%); require a clear preference.
	if richPicks < 100 {
		t.Fatalf("HMaxEnt picked the informative cube only %d/%d times", richPicks, trials)
	}
}

func TestHRandomSelectsRequested(t *testing.T) {
	f := grid.NewField(64, 32, 32)
	f.AddVar("q", nil)
	cubes := grid.Tile(f, 32, 32, 32)
	sel := HRandom{}.SelectCubes(f, cubes, "q", 1, rand.New(rand.NewSource(1)))
	if len(sel) != 1 {
		t.Fatalf("selected %d cubes", len(sel))
	}
	sel = HRandom{}.SelectCubes(f, cubes, "q", 10, rand.New(rand.NewSource(1)))
	if len(sel) != 2 {
		t.Fatalf("oversize request returned %d cubes, want all 2", len(sel))
	}
}

func TestSubsampleDatasetAllSnapshots(t *testing.T) {
	d := smallSST(t, 3)
	cfg := PipelineConfig{
		Hypercubes: "random", Method: "random",
		NumHypercubes: 2, NumSamples: 20,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, Seed: 6,
	}
	out, err := SubsampleDataset(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("got %d cube samples, want 6 (3 snaps × 2 cubes)", len(out))
	}
}

func TestSubsampleParallelMatchesSerial(t *testing.T) {
	d := smallSST(t, 4)
	cfg := PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 2, NumSamples: 30,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, NumClusters: 4, Seed: 7,
	}
	serial, err := SubsampleDataset(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		par, _, err := SubsampleParallel(context.Background(), d, cfg, ranks, minimpi.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("ranks=%d: %d cube samples, want %d", ranks, len(par), len(serial))
		}
		// Seeding is per-snapshot, so results must be rank-count invariant.
		for i := range par {
			if par[i].Snapshot != serial[i].Snapshot || par[i].Cube.ID != serial[i].Cube.ID {
				t.Fatalf("ranks=%d: cube ordering differs at %d", ranks, i)
			}
			for r := range par[i].LocalIdx {
				if par[i].LocalIdx[r] != serial[i].LocalIdx[r] {
					t.Fatalf("ranks=%d: sample indices differ in cube %d", ranks, par[i].Cube.ID)
				}
			}
		}
	}
}

func TestSubsampleParallelChargesComm(t *testing.T) {
	d := smallSST(t, 4)
	cfg := PipelineConfig{
		Hypercubes: "random", Method: "random",
		NumHypercubes: 1, NumSamples: 10,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, Seed: 8,
	}
	_, w, err := SubsampleParallel(context.Background(), d, cfg, 4, minimpi.CostModel{Latency: 1e-5, Bandwidth: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxSimCommSeconds() <= 0 {
		t.Fatal("parallel run charged no communication time")
	}
}

func TestTemporalSamplingDropsPeriodicRepeats(t *testing.T) {
	// Build a dataset whose snapshots cycle with period 4: temporal
	// selection should keep far fewer than all 20 snapshots.
	rng := rand.New(rand.NewSource(9))
	snaps := make([]*grid.Field, 20)
	for tt := range snaps {
		f := grid.NewField(32, 32, 1)
		u := f.AddVar("u", nil)
		phase := float64(tt%4) * 2
		for i := range u {
			u[i] = phase + 0.01*rng.NormFloat64()
		}
		snaps[tt] = f
	}
	d := &grid.Dataset{Label: "cyc", Snapshots: snaps, InputVars: []string{"u"}}
	kept := SelectSnapshots(d, TemporalConfig{Var: "u", Threshold: 0.05})
	if len(kept) >= 10 {
		t.Fatalf("temporal sampling kept %d/20 periodic snapshots, want < 10", len(kept))
	}
	if kept[0] != 0 {
		t.Fatal("first snapshot must always be kept")
	}
	// Novel snapshots must be kept: the first cycle (phases 0,2,4,6) shows
	// up in the kept set.
	if len(kept) < 3 {
		t.Fatalf("temporal sampling kept only %d snapshots, losing novel phases", len(kept))
	}
}

func TestTemporalMaxKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	snaps := make([]*grid.Field, 10)
	for tt := range snaps {
		f := grid.NewField(16, 16, 1)
		u := f.AddVar("u", nil)
		for i := range u {
			u[i] = float64(tt) + 0.1*rng.NormFloat64() // every snapshot novel
		}
		snaps[tt] = f
	}
	d := &grid.Dataset{Label: "nov", Snapshots: snaps, InputVars: []string{"u"}}
	kept := SelectSnapshots(d, TemporalConfig{Var: "u", Threshold: 0.01, MaxKeep: 4})
	if len(kept) != 4 {
		t.Fatalf("MaxKeep violated: kept %d", len(kept))
	}
}

func TestPipelineEnergyAccounting(t *testing.T) {
	d := smallSST(t, 1)
	m := energy.NewMeter()
	cfg := PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 2, NumSamples: 50,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, NumClusters: 4, Seed: 11, Meter: m,
	}
	if _, err := SubsampleSnapshot(context.Background(), d, 0, cfg); err != nil {
		t.Fatal(err)
	}
	if m.Joules() <= 0 {
		t.Fatal("pipeline charged no energy")
	}
}

func BenchmarkSubsampleMaxEnt(b *testing.B) {
	d := smallSST(b, 1)
	cfg := PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 2, NumSamples: 100,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, NumClusters: 5, Seed: 12,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SubsampleSnapshot(context.Background(), d, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSubsampleCancelBetweenCubes: canceling the context mid-snapshot
// stops phase 2 between cube batches — the progress callback sees the
// cubes completed before the cancel, and the run returns ctx.Err().
func TestSubsampleCancelBetweenCubes(t *testing.T) {
	d := smallSST(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var calls []int
	cfg := PipelineConfig{
		NumHypercubes: 4, NumSamples: 20,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, Seed: 3,
		Progress: func(done, total int) {
			calls = append(calls, done)
			if done == 2 {
				cancel() // takes effect before cube 3 starts
			}
		},
	}
	_, err := SubsampleSnapshot(ctx, d, 0, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(calls) != 2 || calls[len(calls)-1] != 2 {
		t.Fatalf("progress calls = %v; pipeline did not stop after the canceling cube", calls)
	}

	// An already-canceled context refuses before phase 1.
	if _, err := SelectCubesForDataset(ctx, d, 0, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 under canceled ctx = %v", err)
	}
}
