package slo

import (
	"encoding/json"
	"net/http"
)

// HandleSLO serves the current evaluation (GET /debug/slo).
func (e *Engine) HandleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(e.Evaluate())
}

// Mount registers the /debug/slo endpoint on a mux.
func (e *Engine) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/slo", e.HandleSLO)
}
