package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// batchBuckets are the upper bounds of the batch-size histogram.
var batchBuckets = []int{1, 2, 4, 8, 16, 32, 64}

// Metrics is the service's instrumentation: per-route request counters and
// latency accumulators, the micro-batch size histogram, queue depth, and
// cache counters. It renders in Prometheus text exposition format so any
// scraper (or the load generator in cmd/sickle-bench) can consume it.
type Metrics struct {
	mu sync.Mutex

	routeCount   map[string]int64
	routeErrors  map[string]int64
	routeSeconds map[string]float64

	batchCounts  []int64 // parallel to batchBuckets, plus +Inf at the end
	batchSum     int64
	batchBatches int64

	inflight int64

	// rejected counts requests refused at admission because a bounded
	// queue was full (the typed overloaded error / HTTP 429).
	rejected int64

	// queueDepth reports the live aggregate depth of the per-model queues;
	// installed by the batcher.
	queueDepth func() int

	// jobStats reports live job counts by state; installed by the server's
	// job manager.
	jobStats func() map[string]int
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		routeCount:   map[string]int64{},
		routeErrors:  map[string]int64{},
		routeSeconds: map[string]float64{},
		batchCounts:  make([]int64, len(batchBuckets)+1),
	}
}

// ObserveRequest records one request on a route.
func (m *Metrics) ObserveRequest(route string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routeCount[route]++
	m.routeSeconds[route] += d.Seconds()
	if failed {
		m.routeErrors[route]++
	}
}

// ObserveBatch records one dispatched micro-batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	for i < len(batchBuckets) && size > batchBuckets[i] {
		i++
	}
	m.batchCounts[i]++
	m.batchSum += int64(size)
	m.batchBatches++
}

// MeanBatchSize returns the average size of dispatched batches (0 if none).
func (m *Metrics) MeanBatchSize() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.batchBatches == 0 {
		return 0
	}
	return float64(m.batchSum) / float64(m.batchBatches)
}

// AddInflight adjusts the in-flight request gauge.
func (m *Metrics) AddInflight(d int64) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

// ObserveRejected counts one request rejected for backpressure.
func (m *Metrics) ObserveRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// RejectedTotal returns the cumulative backpressure rejections.
func (m *Metrics) RejectedTotal() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected
}

// SetQueueDepthFunc installs the live queue-depth probe.
func (m *Metrics) SetQueueDepthFunc(f func() int) {
	m.mu.Lock()
	m.queueDepth = f
	m.mu.Unlock()
}

// SetJobStatsFunc installs the live job-state counter probe.
func (m *Metrics) SetJobStatsFunc(f func() map[string]int) {
	m.mu.Lock()
	m.jobStats = f
	m.mu.Unlock()
}

// Render writes the Prometheus text format. cache may be nil.
func (m *Metrics) Render(cache *LRU) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	fmt.Fprintf(&b, "# TYPE sickle_requests_total counter\n")
	for _, route := range sortedKeys(m.routeCount) {
		fmt.Fprintf(&b, "sickle_requests_total{route=%q} %d\n", route, m.routeCount[route])
	}
	fmt.Fprintf(&b, "# TYPE sickle_request_errors_total counter\n")
	for _, route := range sortedKeys(m.routeErrors) {
		fmt.Fprintf(&b, "sickle_request_errors_total{route=%q} %d\n", route, m.routeErrors[route])
	}
	fmt.Fprintf(&b, "# TYPE sickle_request_seconds_sum counter\n")
	for _, route := range sortedKeys(m.routeSeconds) {
		fmt.Fprintf(&b, "sickle_request_seconds_sum{route=%q} %g\n", route, m.routeSeconds[route])
	}

	fmt.Fprintf(&b, "# TYPE sickle_batch_size histogram\n")
	cum := int64(0)
	for i, ub := range batchBuckets {
		cum += m.batchCounts[i]
		fmt.Fprintf(&b, "sickle_batch_size_bucket{le=\"%d\"} %d\n", ub, cum)
	}
	cum += m.batchCounts[len(batchBuckets)]
	fmt.Fprintf(&b, "sickle_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "sickle_batch_size_sum %d\n", m.batchSum)
	fmt.Fprintf(&b, "sickle_batch_size_count %d\n", m.batchBatches)

	fmt.Fprintf(&b, "# TYPE sickle_inflight_requests gauge\n")
	fmt.Fprintf(&b, "sickle_inflight_requests %d\n", m.inflight)
	fmt.Fprintf(&b, "# TYPE sickle_rejected_requests_total counter\n")
	fmt.Fprintf(&b, "sickle_rejected_requests_total %d\n", m.rejected)
	if m.queueDepth != nil {
		fmt.Fprintf(&b, "# TYPE sickle_queue_depth gauge\n")
		fmt.Fprintf(&b, "sickle_queue_depth %d\n", m.queueDepth())
	}
	if m.jobStats != nil {
		fmt.Fprintf(&b, "# TYPE sickle_jobs gauge\n")
		stats := m.jobStats()
		for _, state := range sortedKeys(stats) {
			fmt.Fprintf(&b, "sickle_jobs{state=%q} %d\n", state, stats[state])
		}
	}

	if cache != nil {
		hits, misses, evictions := cache.Stats()
		fmt.Fprintf(&b, "# TYPE sickle_cache_hits_total counter\n")
		fmt.Fprintf(&b, "sickle_cache_hits_total %d\n", hits)
		fmt.Fprintf(&b, "# TYPE sickle_cache_misses_total counter\n")
		fmt.Fprintf(&b, "sickle_cache_misses_total %d\n", misses)
		fmt.Fprintf(&b, "# TYPE sickle_cache_evictions_total counter\n")
		fmt.Fprintf(&b, "sickle_cache_evictions_total %d\n", evictions)
		fmt.Fprintf(&b, "# TYPE sickle_cache_entries gauge\n")
		fmt.Fprintf(&b, "sickle_cache_entries %d\n", cache.Len())
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
