package sickle

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/grid"
	"repro/internal/sampling"
)

// The binary subsample format implements the paper's storage-reduction
// feature: instead of archiving full snapshots, SICKLE persists only the
// feature-rich subsampled points. Layout (little-endian):
//
//	magic "SKL1" | nCubes u32
//	per cube: snapshot u32, cube {i0,j0,k0,sx,sy,sz,id} u32×7,
//	          nPoints u32, nFeat u32, nTgt u32,
//	          localIdx u32×n, features f64×n×nFeat, targets f64×n×nTgt

var storeMagic = [4]byte{'S', 'K', 'L', '1'}

// SaveCubeSamples writes cube samples to path. The file handle's Close
// error is propagated: on full disks the kernel may only report the lost
// write at close time, and swallowing it would leave a truncated .skl file
// that looks successfully written.
func SaveCubeSamples(path string, cubes []sampling.CubeSample) error {
	a, err := OpenShardAppender(path)
	if err != nil {
		return err
	}
	if err := a.Append(cubes...); err != nil {
		_ = a.Close() // the append error dominates
		return err
	}
	return a.Close()
}

// ShardAppender incrementally writes cube samples to a .skl shard. Unlike
// SaveCubeSamples it does not need the full sample set up front: streaming
// producers append cubes as snapshots are consumed, and Close patches the
// cube count into the header, yielding a file LoadCubeSamples reads
// unchanged. Not safe for concurrent use; give each writer its own shard.
type ShardAppender struct {
	path   string
	f      *os.File
	w      *bufio.Writer
	n      int
	closed bool
	// failed records a mid-record write failure. A partial record may
	// already have auto-flushed to disk, and a file whose header counts
	// only the complete records would load cleanly with data silently
	// missing — so Close removes the shard instead of finalizing it.
	failed error
}

// OpenShardAppender creates (truncating) a shard at path and writes the
// header with a zero cube count placeholder.
func OpenShardAppender(path string) (*ShardAppender, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	a := &ShardAppender{path: path, f: f, w: bufio.NewWriter(f)}
	if _, err := a.w.Write(storeMagic[:]); err != nil {
		_ = f.Close() // the magic write error dominates
		return nil, err
	}
	if err := binary.Write(a.w, binary.LittleEndian, uint32(0)); err != nil {
		_ = f.Close() // the header write error dominates
		return nil, err
	}
	return a, nil
}

// Count returns the number of cube samples appended so far.
func (a *ShardAppender) Count() int { return a.n }

// Append writes cube samples to the shard.
func (a *ShardAppender) Append(cubes ...sampling.CubeSample) error {
	if a.closed {
		return fmt.Errorf("sickle: append to closed shard %s", a.path)
	}
	if a.failed != nil {
		return a.failed
	}
	for i := range cubes {
		if err := writeCubeSample(a.w, &cubes[i]); err != nil {
			a.failed = err
			return err
		}
		a.n++
	}
	return nil
}

// Close flushes buffered data, patches the cube count into the header, and
// closes the file. As with SaveCubeSamples, the Close error of the
// underlying handle is propagated so full-disk truncation is not silently
// swallowed. If any Append failed, the shard is removed rather than
// finalized: a partially-written file must not survive looking valid.
// Closing twice is a no-op.
func (a *ShardAppender) Close() (err error) {
	if a.closed {
		return nil
	}
	a.closed = true
	if a.failed != nil {
		_ = a.f.Close() // the recorded append failure dominates
		os.Remove(a.path)
		return a.failed
	}
	defer func() {
		if cerr := a.f.Close(); err == nil {
			err = cerr
		}
	}()
	if err := a.w.Flush(); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(a.n))
	if _, err := a.f.WriteAt(hdr[:], int64(len(storeMagic))); err != nil {
		return err
	}
	// fsync before close: Close alone only hands the pages to the kernel,
	// and a crash between close and writeback would leave a shard whose
	// header promises cubes the disk never got.
	return a.f.Sync()
}

// writeCubeSample serializes one cube record in the SKL1 layout.
func writeCubeSample(w io.Writer, cs *sampling.CubeSample) error {
	le := binary.LittleEndian
	u32 := func(v int) error { return binary.Write(w, le, uint32(v)) }
	hdr := []int{cs.Snapshot, cs.Cube.I0, cs.Cube.J0, cs.Cube.K0,
		cs.Cube.Sx, cs.Cube.Sy, cs.Cube.Sz, cs.Cube.ID}
	for _, v := range hdr {
		if err := u32(v); err != nil {
			return err
		}
	}
	n := len(cs.LocalIdx)
	nf, nt := 0, 0
	if n > 0 {
		nf = len(cs.Features[0])
		nt = len(cs.Targets[0])
	}
	for _, v := range []int{n, nf, nt} {
		if err := u32(v); err != nil {
			return err
		}
	}
	for _, li := range cs.LocalIdx {
		if err := u32(li); err != nil {
			return err
		}
	}
	for _, row := range cs.Features {
		if err := binary.Write(w, le, row); err != nil {
			return err
		}
	}
	for _, row := range cs.Targets {
		if err := binary.Write(w, le, row); err != nil {
			return err
		}
	}
	return nil
}

// LoadCubeSamples reads cube samples from path.
func LoadCubeSamples(path string) ([]sampling.CubeSample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("sickle: %s is not a SKL1 subsample file", path)
	}
	le := binary.LittleEndian
	u32 := func() (int, error) {
		var v uint32
		err := binary.Read(r, le, &v)
		return int(v), err
	}
	nCubes, err := u32()
	if err != nil {
		return nil, err
	}
	out := make([]sampling.CubeSample, 0, nCubes)
	for c := 0; c < nCubes; c++ {
		vals := make([]int, 11)
		for i := range vals {
			if vals[i], err = u32(); err != nil {
				return nil, err
			}
		}
		cs := sampling.CubeSample{
			Snapshot: vals[0],
			Cube: grid.Hypercube{I0: vals[1], J0: vals[2], K0: vals[3],
				Sx: vals[4], Sy: vals[5], Sz: vals[6], ID: vals[7]},
		}
		n, nf, nt := vals[8], vals[9], vals[10]
		cs.LocalIdx = make([]int, n)
		for i := range cs.LocalIdx {
			if cs.LocalIdx[i], err = u32(); err != nil {
				return nil, err
			}
		}
		cs.Features = make([][]float64, n)
		for i := range cs.Features {
			cs.Features[i] = make([]float64, nf)
			if err := binary.Read(r, le, cs.Features[i]); err != nil {
				return nil, err
			}
		}
		cs.Targets = make([][]float64, n)
		for i := range cs.Targets {
			cs.Targets[i] = make([]float64, nt)
			if err := binary.Read(r, le, cs.Targets[i]); err != nil {
				return nil, err
			}
		}
		out = append(out, cs)
	}
	// A well-formed shard ends exactly after the declared records; trailing
	// bytes mean a corrupt or partially-written file and must fail loudly
	// rather than load as a smaller, valid-looking dataset.
	if _, err := r.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("sickle: %s has trailing bytes after %d cubes", path, nCubes)
		}
		return nil, err
	}
	return out, nil
}

// StorageReduction returns the size ratio full-dataset : subsample-file,
// the figure of merit for the paper's storage-reduction claim.
func StorageReduction(d *grid.Dataset, subsamplePath string) (float64, error) {
	st, err := os.Stat(subsamplePath)
	if err != nil {
		return 0, err
	}
	if st.Size() == 0 {
		return 0, fmt.Errorf("sickle: empty subsample file")
	}
	return float64(d.SizeBytes()) / float64(st.Size()), nil
}
