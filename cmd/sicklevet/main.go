// Command sicklevet machine-enforces this repository's correctness
// contracts as a static-analysis suite. It runs standalone:
//
//	go run ./cmd/sicklevet ./...
//
// or as a go vet tool:
//
//	go build -o "$(go env GOPATH)/bin/sicklevet" ./cmd/sicklevet
//	go vet -vettool="$(which sicklevet)" ./...
//
// Analyzers (suppress one finding with //sicklevet:ignore <analyzer>
// <reason>, a whole file with //sicklevet:file-ignore):
//
//	closecheck   discarded Close/Sync errors on writable files/writers
//	ctxfirst     context-first cancellation (no root contexts in libraries)
//	apierr       typed *api.Error with registered codes at the HTTP boundary
//	metricname   sickle_* series naming, unit suffixes, single registration
//	ologonly     olog-only logging in the long-running stack
//	detparallel  deterministic ParallelFor bodies (bitwise parity contract)
//
// See README "Development: static analysis" and internal/analysis.
package main

import (
	"repro/internal/analysis/checker"
	"repro/internal/analysis/passes/apierr"
	"repro/internal/analysis/passes/closecheck"
	"repro/internal/analysis/passes/ctxfirst"
	"repro/internal/analysis/passes/detparallel"
	"repro/internal/analysis/passes/metricname"
	"repro/internal/analysis/passes/ologonly"
)

func main() {
	checker.Main(
		apierr.Analyzer,
		closecheck.Analyzer,
		ctxfirst.Analyzer,
		detparallel.Analyzer,
		metricname.Analyzer,
		ologonly.Analyzer,
	)
}
