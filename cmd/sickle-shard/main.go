// sickle-shard scales SICKLE-Go serving horizontally: a consistent-hash
// router that fronts N sickle-serve backends and speaks the same pkg/api
// surface, so pkg/client (and sickle-bench -serve) work against it
// unchanged. Infer/subsample requests route by model/dataset hash with
// bounded failover when a backend is unreachable, overloaded, or
// draining; model listings and the version handshake scatter-gather;
// jobs stick to the backend that accepted them. A health prober ejects
// dead backends and re-admits them when /healthz answers again.
//
// With -replication K (default 1), a keyed job submission's owner set is
// its K ring successors: the submission is copied to all K owners and a
// resubmitted key found anywhere in the set returns the existing job, so
// keyed submissions are exactly-once-observable fleet-wide even across
// an owner's death. Membership is elastic: replicas join (with
// warm-cache model prefetch before taking traffic) and drain out (sticky
// jobs bled to terminal states first) through the admin API on a live
// router.
//
// Usage:
//
//	sickle-shard -addr :8090 -backends http://h1:8080,http://h2:8080
//	sickle-shard -case case.yaml          # shard: section
//	sickle-shard -addr :8090 -demo        # 3 in-process replicas, shared demo model
//
// Routes: the full /v2 surface plus GET /api/version, GET /healthz
// (aggregated, with per-replica detail), the membership admin API
// (GET|POST /admin/replicas, DELETE /admin/replicas/{id}[?force=true]),
// GET /metrics (sickle_shard_replica_up, routed/failed/failover
// counters, owner-set and rebalance series, per-route latency
// histograms), and GET /debug/traces[/{id}] — the {id} view merges the
// router's spans with every replica's, so one request reads as one
// trace. -debug-addr starts a net/http/pprof sidecar.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	olog "repro/internal/obs/log"
	"repro/internal/obs/slo"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8090 or the case file's shard.addr)")
	backends := flag.String("backends", "", "comma-separated backend base URLs")
	caseFile := flag.String("case", "", "YAML case file with an optional shard: section")
	probeMS := flag.Int("probe-ms", 0, "health-probe period in ms (default 1000)")
	failAfter := flag.Int("fail-after", 0, "consecutive failures before ejecting a replica (default 2)")
	maxFailover := flag.Int("max-failover", 0, "extra ring nodes tried after the primary (default 2)")
	replication := flag.Int("replication", 0, "owner-set size K for keyed job submissions (default 1)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (default 160)")
	demo := flag.Bool("demo", false, "spawn in-process replicas sharing a freshly trained demo model")
	demoReplicas := flag.Int("demo-replicas", 3, "in-process replicas to spawn with -demo")
	demoDataDir := flag.String("demo-data-dir", "", "per-replica durability dirs <dir>/r<i> for -demo replicas (\"\" = in-memory)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines")
	debugAddr := flag.String("debug-addr", "", "pprof + debug sidecar listen address (\"\" = off)")
	slos := flag.String("slo", "", "comma-separated SLO specs (e.g. latency:/v2/infer:250ms:99.9)")
	flag.Parse()

	lvl, ok := olog.ParseLevel(*logLevel)
	lg := olog.New(os.Stderr, lvl, *logJSON)
	if !ok {
		lg.Warn("unknown -log-level, using info", "given", *logLevel)
	}
	fatal := func(msg string, kv ...any) {
		lg.Error(msg, kv...)
		os.Exit(1)
	}

	cfg := shard.Config{Logger: lg}
	if *caseFile != "" {
		c, err := config.LoadCase(*caseFile)
		if err != nil {
			fatal("load case file", "err", err)
		}
		cfg = shard.Config{
			Addr:        c.Shard.Addr,
			URLs:        c.Shard.Replicas,
			VNodes:      c.Shard.VNodes,
			ProbeEvery:  time.Duration(c.Shard.ProbeMS) * time.Millisecond,
			FailAfter:   c.Shard.FailAfter,
			MaxFailover: c.Shard.MaxFailover,
			Replication: c.Shard.Replication,
			Logger:      lg,

			HistoryInterval: time.Duration(c.Obs.HistoryIntervalMS) * time.Millisecond,
			HistoryCapacity: c.Obs.HistoryCapacity,
			EventCapacity:   c.Obs.EventCapacity,
		}
		objectives, err := slo.ParseObjectives(c.Obs.SLOs)
		if err != nil {
			fatal("parse obs.slos", "err", err)
		}
		cfg.SLOs = objectives
		if *debugAddr == "" {
			*debugAddr = c.Shard.DebugAddr
		}
	}
	if *slos != "" {
		objectives, err := slo.ParseObjectives(strings.Split(*slos, ","))
		if err != nil {
			fatal("parse -slo", "err", err)
		}
		cfg.SLOs = objectives
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *backends != "" {
		cfg.URLs = strings.Split(*backends, ",")
	}
	if *probeMS > 0 {
		cfg.ProbeEvery = time.Duration(*probeMS) * time.Millisecond
	}
	if *failAfter > 0 {
		cfg.FailAfter = *failAfter
	}
	if *maxFailover > 0 {
		cfg.MaxFailover = *maxFailover
	}
	if *replication > 0 {
		cfg.Replication = *replication
	}
	if *vnodes > 0 {
		cfg.VNodes = *vnodes
	}

	var inprocs []*serve.InProc
	if *demo {
		if len(cfg.URLs) > 0 {
			fatal("use either -demo or -backends/-case replicas, not both")
		}
		if *demoReplicas < 1 {
			fatal("-demo-replicas must be >= 1")
		}
		lg.Info("training demo model", "replicas", *demoReplicas)
		dm, err := serve.TrainDemo(context.Background())
		if err != nil {
			fatal("train demo model", "err", err)
		}
		lg.Info("demo model trained", "params", dm.Params, "test_loss", dm.FinalLoss)
		for i := 0; i < *demoReplicas; i++ {
			rcfg := serve.Config{}
			if *demoDataDir != "" {
				rcfg.DataDir = filepath.Join(*demoDataDir, fmt.Sprintf("r%d", i))
			}
			p, err := serve.StartInProc(rcfg)
			if err != nil {
				fatal("start in-process replica", "err", err)
			}
			if err := dm.Register(p.Server, "demo", 2); err != nil {
				fatal("register demo on replica", "err", err)
			}
			inprocs = append(inprocs, p)
			cfg.URLs = append(cfg.URLs, p.URL)
			lg.Info("replica serving demo", "replica", i, "url", p.URL)
		}
	}
	if len(cfg.URLs) == 0 {
		fatal("no backends: pass -backends, a -case shard: section, or -demo")
	}

	rt, err := shard.NewRouter(cfg)
	if err != nil {
		fatal("build router", "err", err)
	}
	rt.Start()
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, rt.Metrics().Registry(), rt.Tracer(), func(err error) {
			lg.Error("debug listener", "err", err)
		}, rt.History(), rt.Journal(), rt.SLO())
		lg.Info("debug endpoints up", "addr", *debugAddr)
	}
	if owner, ok := rt.ReplicaSet().Owner("demo"); ok && *demo {
		lg.Info("consistent-hash owner of demo", "replica", owner.ID, "url", owner.URL)
	}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		lg.Info("draining")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			lg.Error("shutdown", "err", err)
		}
		for i, p := range inprocs {
			if err := p.Close(ctx); err != nil {
				lg.Error("replica shutdown", "replica", i, "err", err)
			}
		}
		close(done)
	}()

	lg.Info("sickle-shard routing", "replicas", len(cfg.URLs))
	if err := rt.ListenAndServe(); err != nil {
		fatal("listen", "err", err)
	}
	<-done
}
