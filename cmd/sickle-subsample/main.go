// sickle-subsample is the T1 stage of the paper's workflow (the artifact's
// `srun -n 32 python subsample.py case.yaml`): it builds or selects a
// dataset, runs the two-phase sampling pipeline across minimpi ranks, and
// writes the feature-rich subsample to a compact binary file, reporting
// energy and storage reduction.
//
// Usage:
//
//	sickle-subsample -case case.yaml -dataset SST-P1F4 -n 8 -o sub.skl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/sampling"
	"repro/internal/sickle"
)

func main() {
	caseFile := flag.String("case", "", "YAML case file (optional; flags override)")
	dataset := flag.String("dataset", "SST-P1F4", "dataset name (see sickle.DatasetNames)")
	ranks := flag.Int("n", 1, "minimpi ranks")
	out := flag.String("o", "subsample.skl", "output subsample file")
	hsel := flag.String("hypercubes", "", "phase-1 selector: random|maxent")
	method := flag.String("method", "", "phase-2 sampler: full|random|uniform|lhs|stratified|uips|maxent")
	scaleStr := flag.String("scale", "small", "dataset scale")
	flag.Parse()

	pcfg := sampling.PipelineConfig{Hypercubes: "maxent", Method: "maxent", NumClusters: 5, Seed: 1}
	if *caseFile != "" {
		c, err := config.LoadCase(*caseFile)
		if err != nil {
			log.Fatal(err)
		}
		pcfg.Hypercubes = c.Hypercubes
		pcfg.Method = c.Method
		pcfg.NumHypercubes = c.NumHypercubes
		pcfg.NumSamples = c.NumSamples
		pcfg.NumClusters = c.NumClusters
		pcfg.CubeSx, pcfg.CubeSy, pcfg.CubeSz = c.NxSL, c.NySL, c.NzSL
		pcfg.Seed = c.Seed
	}
	if *hsel != "" {
		pcfg.Hypercubes = *hsel
	}
	if *method != "" {
		pcfg.Method = *method
	}

	scale := sickle.Small
	if *scaleStr == "large" {
		scale = sickle.Large
	}
	d, err := sickle.BuildDataset(*dataset, scale)
	if err != nil {
		log.Fatal(err)
	}
	// Clamp cube size to the dataset.
	f := d.Snapshots[0]
	if pcfg.CubeSx == 0 || pcfg.CubeSx > f.Nx {
		pcfg.CubeSx = min(32, f.Nx)
	}
	if pcfg.CubeSy == 0 || pcfg.CubeSy > f.Ny {
		pcfg.CubeSy = min(32, f.Ny)
	}
	if pcfg.CubeSz == 0 || pcfg.CubeSz > f.Nz {
		pcfg.CubeSz = min(32, f.Nz)
	}
	if pcfg.NumHypercubes == 0 {
		pcfg.NumHypercubes = 4
	}
	if pcfg.NumSamples == 0 {
		pcfg.NumSamples = pcfg.CubeSx * pcfg.CubeSy * pcfg.CubeSz / 10
	}

	meter := energy.NewMeter()
	pcfg.Meter = meter
	t0 := time.Now()
	cubes, world, err := sampling.SubsampleParallel(context.Background(), d, pcfg, *ranks, sickle.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	if err := sickle.SaveCubeSamples(*out, cubes); err != nil {
		log.Fatal(err)
	}
	ratio, err := sickle.StorageReduction(d, *out)
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, cs := range cubes {
		total += len(cs.LocalIdx)
	}
	fmt.Printf("dataset: %s (%s, %d snapshots)\n", d.Label, d.GridString(), d.NTime())
	fmt.Printf("pipeline: H%s-X%s, %d cubes of %d³, %d samples/cube\n",
		pcfg.Hypercubes, pcfg.Method, pcfg.NumHypercubes, pcfg.CubeSx, pcfg.NumSamples)
	fmt.Printf("selected %d cube-samples, %d points total\n", len(cubes), total)
	fmt.Printf("Elapsed Time: %v (sim comm: %.3g s at %d ranks)\n",
		elapsed, world.MaxSimCommSeconds(), *ranks)
	fmt.Println(meter.String())
	fmt.Printf("wrote %s (storage reduction %.0fx vs full dataset)\n", *out, ratio)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
