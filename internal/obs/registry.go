package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default request-latency histogram bounds (seconds),
// spanning sub-millisecond micro-batch hits to multi-second pipeline runs.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// kind is a metric family's exposition TYPE.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as Prometheus text
// exposition (version 0.0.4) with # HELP and # TYPE lines. One Registry
// backs each server's /metrics endpoint; all mutators are safe for
// concurrent use with Render.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one named metric with a fixed label schema and its children
// (one child per distinct label-value tuple).
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]child // key: joined label values
	order    []string

	// live probes (registered via the -Func variants) are read at render
	// time instead of being stored.
	fn    func() float64
	mapFn func() map[string]float64 // label value -> gauge value
}

type child interface{ value() float64 }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		return f
	}
	f := &family{
		name: name, help: help, kind: k, labels: labels, buckets: buckets,
		children: map[string]child{},
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) a counter family with the given label
// schema. Use With(values...) for a series handle; zero labels mean a
// single series.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or returns) an le-bucketed histogram family.
// buckets are upper bounds in increasing order, +Inf excluded (it is
// always appended). nil buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.family(name, help, kindHistogram, buckets, labels)}
}

// GaugeFunc registers a live unlabeled gauge read at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGauge, nil, nil).fn = fn
}

// CounterFunc registers a live unlabeled counter read at render time (the
// caller guarantees monotonicity).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, kindCounter, nil, nil).fn = fn
}

// GaugeMapFunc registers a live single-label gauge family whose series set
// is produced fresh at render time (label value -> gauge value).
func (r *Registry) GaugeMapFunc(name, help, label string, fn func() map[string]float64) {
	r.family(name, help, kindGauge, nil, []string{label}).mapFn = fn
}

// ---- series handles ----

// Counter is a monotonically increasing series. All methods are nil-safe
// no-ops so instrumentation can be optional without branches.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) value() float64 { return c.Value() }

// Gauge is a series that can go up and down. Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) value() float64 { return g.Value() }

// Histogram is an le-bucketed distribution. Nil-safe like Counter.
type Histogram struct {
	buckets   []float64
	counts    []atomic.Uint64 // one per bucket, +Inf last
	exemplars []atomic.Pointer[string]
	sumBits   atomic.Uint64
	n         atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.n.Add(1)
}

// ObserveEx records one sample and attaches an exemplar (a trace ID) to
// the bucket it lands in, replacing any previous one. Exemplars never
// appear in the Prometheus text exposition — they surface only through
// Snapshot and the /debug/history JSON — so scrapers are unaffected.
func (h *Histogram) ObserveEx(v float64, exemplar string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	if exemplar != "" {
		h.exemplars[i].Store(&exemplar)
	}
	addFloat(&h.sumBits, v)
	h.n.Add(1)
}

// Sum returns the sum of observed samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of observed samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

func (h *Histogram) value() float64 { return h.Sum() }

// addFloat is a lock-free float64 accumulate over atomic bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ---- vecs ----

// CounterVec is a counter family handle; With resolves one series.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (len must match the
// registered schema). Series are created on first use and cached.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() child { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family handle.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values, func() child { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family handle.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values, func() child {
		h := &Histogram{buckets: v.fam.buckets}
		h.counts = make([]atomic.Uint64, len(h.buckets)+1)
		h.exemplars = make([]atomic.Pointer[string], len(h.buckets)+1)
		return h
	}).(*Histogram)
}

func (f *family) child(values []string, mk func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// ---- rendering ----

// Render produces the full text exposition, families sorted by name and
// series sorted by label values, so scrapes are deterministic.
func (r *Registry) Render() string {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	return b.String()
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, fmtVal(f.fn()))
		return
	}
	if f.mapFn != nil {
		m := f.mapFn()
		for _, k := range sortedMapKeys(m) {
			fmt.Fprintf(b, "%s{%s=%s} %s\n", f.name, f.labels[0], quoteLabel(k), fmtVal(m[k]))
		}
		return
	}

	// Render series sorted by label tuple.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	for _, i := range idx {
		values := strings.Split(keys[i], "\x00")
		if keys[i] == "" && len(f.labels) == 0 {
			values = nil
		}
		switch c := children[i].(type) {
		case *Histogram:
			f.renderHistogram(b, values, c)
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), fmtVal(c.value()))
		}
	}
}

func (f *family) renderHistogram(b *strings.Builder, values []string, h *Histogram) {
	cum := uint64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, values, "le", fmtVal(ub)), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
		labelString(f.labels, values, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), fmtVal(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), h.Count())
}

// labelString renders {k="v",...} with an optional extra label appended
// (the histogram le). Empty when there are no labels at all.
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(quoteLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// quoteLabel escapes a label value per the exposition format.
func quoteLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return `"` + v + `"`
}

// fmtVal renders a sample value the way the old hand-rolled exporters did:
// integers without a decimal point, everything else in %g form.
func fmtVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedMapKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---- snapshots (the tsdb sampler's view) ----

// Sample is one series' instantaneous value as captured by Snapshot:
// counters and gauges carry Value; histograms carry cumulative per-bucket
// counts (+Inf last), the running Sum/Count, and any bucket exemplars
// (trace IDs, "" where none was attached).
type Sample struct {
	Name        string
	Kind        string // "counter" | "gauge" | "histogram"
	LabelNames  []string
	LabelValues []string

	Value float64 // counter/gauge

	Buckets      []float64 // histogram upper bounds, +Inf excluded
	BucketCounts []uint64  // per-bucket (non-cumulative), +Inf last
	Count        uint64
	Sum          float64
	Exemplars    []string // per bucket, aligned with BucketCounts
}

// Snapshot captures every series' current value, families sorted by name
// and series by label tuple — the deterministic input the history sampler
// (internal/obs/tsdb) consumes. Live -Func probes are evaluated.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	var out []Sample
	for _, f := range fams {
		if f.fn != nil {
			out = append(out, Sample{Name: f.name, Kind: f.kind.String(), Value: f.fn()})
			continue
		}
		if f.mapFn != nil {
			m := f.mapFn()
			for _, k := range sortedMapKeys(m) {
				out = append(out, Sample{
					Name: f.name, Kind: f.kind.String(),
					LabelNames: f.labels, LabelValues: []string{k}, Value: m[k],
				})
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		for _, i := range idx {
			values := strings.Split(keys[i], "\x00")
			if keys[i] == "" && len(f.labels) == 0 {
				values = nil
			}
			s := Sample{Name: f.name, Kind: f.kind.String(),
				LabelNames: f.labels, LabelValues: values}
			switch c := children[i].(type) {
			case *Histogram:
				s.Buckets = c.buckets
				s.BucketCounts = make([]uint64, len(c.counts))
				s.Exemplars = make([]string, len(c.counts))
				for bi := range c.counts {
					s.BucketCounts[bi] = c.counts[bi].Load()
					if ex := c.exemplars[bi].Load(); ex != nil {
						s.Exemplars[bi] = *ex
					}
				}
				s.Count = c.Count()
				s.Sum = c.Sum()
			default:
				s.Value = c.value()
			}
			out = append(out, s)
		}
	}
	return out
}
