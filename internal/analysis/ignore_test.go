package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *IgnoreSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseIgnores(fset, []*ast.File{f})
}

// posAt returns a Pos on the given 1-based line of x.go.
func posAt(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestLineDirectiveScope(t *testing.T) {
	fset, s := parseSrc(t, `package p

func f() {
	//sicklevet:ignore closecheck error path
	g()
	g()
}
`)
	if !s.Suppressed(fset, "closecheck", posAt(fset, 4)) {
		t.Error("directive should cover its own line")
	}
	if !s.Suppressed(fset, "closecheck", posAt(fset, 5)) {
		t.Error("directive should cover the next line")
	}
	if s.Suppressed(fset, "closecheck", posAt(fset, 6)) {
		t.Error("directive must not cover two lines down")
	}
	if s.Suppressed(fset, "ctxfirst", posAt(fset, 5)) {
		t.Error("directive names closecheck only")
	}
	if len(s.Malformed) != 0 {
		t.Errorf("unexpected malformed: %v", s.Malformed)
	}
}

func TestAnalyzerListAndAll(t *testing.T) {
	fset, s := parseSrc(t, `package p

//sicklevet:ignore closecheck,ctxfirst shared reason
var x = 1

//sicklevet:ignore all kitchen sink
var y = 2
`)
	for _, name := range []string{"closecheck", "ctxfirst"} {
		if !s.Suppressed(fset, name, posAt(fset, 4)) {
			t.Errorf("comma list should cover %s", name)
		}
	}
	if s.Suppressed(fset, "ologonly", posAt(fset, 4)) {
		t.Error("comma list must not cover unnamed analyzer")
	}
	if !s.Suppressed(fset, "ologonly", posAt(fset, 7)) {
		t.Error("all should cover every analyzer")
	}
}

func TestFileIgnore(t *testing.T) {
	fset, s := parseSrc(t, `//sicklevet:file-ignore ologonly CLI result output
package p

var x = 1
`)
	if !s.Suppressed(fset, "ologonly", posAt(fset, 4)) {
		t.Error("file-ignore should cover the whole file")
	}
	if s.Suppressed(fset, "closecheck", posAt(fset, 4)) {
		t.Error("file-ignore names ologonly only")
	}
}

func TestMissingReasonIsMalformed(t *testing.T) {
	_, s := parseSrc(t, `package p

//sicklevet:ignore closecheck
var x = 1
`)
	if len(s.Malformed) != 1 {
		t.Fatalf("want 1 malformed directive, got %d", len(s.Malformed))
	}
}
