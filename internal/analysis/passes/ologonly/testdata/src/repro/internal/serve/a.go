// Golden input for ologonly, placed at a long-running import path
// (testdata dir layout below src/ is the package's import path).
package serve

import (
	"fmt"
	"log"
	"os"
)

func operate() {
	fmt.Println("status")          // want `fmt.Println writes to process stdout`
	fmt.Printf("x %d\n", 1)        // want `fmt.Printf writes to process stdout`
	fmt.Print("y")                 // want `fmt.Print writes to process stdout`
	log.Printf("legacy %d", 1)     // want `standard log package bypasses olog`
	log.Println("legacy")          // want `standard log package bypasses olog`
	println("builtin")             // want `builtin println writes to stderr unstructured`
	print("builtin")               // want `builtin print writes to stderr unstructured`
	fmt.Fprintf(os.Stderr, "ok\n") // explicit writer: fine
	//sicklevet:ignore ologonly demonstrating the line escape hatch
	fmt.Println("suppressed")
}
