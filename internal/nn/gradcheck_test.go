package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numGrad computes the finite-difference gradient of loss() with respect
// to every entry of w.
func numGrad(w *tensor.Tensor, loss func() float64) []float64 {
	const eps = 1e-6
	g := make([]float64, w.Len())
	for i := range w.Data {
		orig := w.Data[i]
		w.Data[i] = orig + eps
		lp := loss()
		w.Data[i] = orig - eps
		lm := loss()
		w.Data[i] = orig
		g[i] = (lp - lm) / (2 * eps)
	}
	return g
}

func maxRelErr(analytic, numeric []float64) float64 {
	worst := 0.0
	for i := range analytic {
		denom := math.Abs(analytic[i]) + math.Abs(numeric[i]) + 1e-8
		if e := math.Abs(analytic[i]-numeric[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

// checkModuleGrads verifies every parameter gradient of mod against finite
// differences, where forward() recomputes the scalar loss from scratch and
// backward() runs one analytic forward+backward pass.
func checkModuleGrads(t *testing.T, mod Module, forward func() float64, backward func()) {
	t.Helper()
	ZeroGrads(mod)
	backward()
	for _, p := range mod.Params() {
		num := numGrad(p.W, forward)
		if e := maxRelErr(p.Grad.Data, num); e > 1e-4 {
			t.Fatalf("%s: gradient mismatch, max rel err %v", p.Name, e)
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := tensor.Randn(rng, 1, 5, 4)
	tgt := tensor.Randn(rng, 1, 5, 3)
	forward := func() float64 {
		loss, _ := MSELoss(l.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(l.Forward(x), tgt)
		l.Backward(g)
	}
	checkModuleGrads(t, l, forward, backward)
}

func TestLinearInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 4, 3)
	x := tensor.Randn(rng, 1, 5, 4)
	tgt := tensor.Randn(rng, 1, 5, 3)
	_, g := MSELoss(l.Forward(x), tgt)
	dx := l.Backward(g)
	num := numGrad(x, func() float64 {
		loss, _ := MSELoss(l.Forward(x), tgt)
		return loss
	})
	if e := maxRelErr(dx.Data, num); e > 1e-4 {
		t.Fatalf("dx mismatch: %v", e)
	}
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []string{"tanh", "relu", "sigmoid"} {
		a := NewActivation(kind)
		x := tensor.Randn(rng, 1, 6, 4)
		// Keep ReLU inputs away from the kink.
		for i := range x.Data {
			if math.Abs(x.Data[i]) < 0.05 {
				x.Data[i] = 0.1
			}
		}
		tgt := tensor.Randn(rng, 1, 6, 4)
		_, g := MSELoss(a.Forward(x), tgt)
		dx := a.Backward(g)
		num := numGrad(x, func() float64 {
			loss, _ := MSELoss(a.Forward(x), tgt)
			return loss
		})
		if e := maxRelErr(dx.Data, num); e > 1e-4 {
			t.Fatalf("%s dx mismatch: %v", kind, e)
		}
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(rng, 3, 5)
	x := tensor.Randn(rng, 1, 2, 4, 3) // [B=2, T=4, C=3]
	x = x.Reshape(2, 4, 3)
	tgt := tensor.Randn(rng, 1, 2, 4, 5).Reshape(2, 4, 5)
	forward := func() float64 {
		loss, _ := MSELoss(l.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(l.Forward(x), tgt)
		l.Backward(g)
	}
	checkModuleGrads(t, l, forward, backward)
}

func TestLSTMInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLSTM(rng, 3, 4)
	x := tensor.Randn(rng, 1, 2, 3, 3).Reshape(2, 3, 3)
	tgt := tensor.Randn(rng, 1, 2, 3, 4).Reshape(2, 3, 4)
	_, g := MSELoss(l.Forward(x), tgt)
	dx := l.Backward(g)
	num := numGrad(x, func() float64 {
		loss, _ := MSELoss(l.Forward(x), tgt)
		return loss
	})
	if e := maxRelErr(dx.Data, num); e > 1e-4 {
		t.Fatalf("LSTM dx mismatch: %v", e)
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLayerNorm(5)
	// Non-trivial gain/bias so the test isn't at the identity point.
	for i := range l.Gain.W.Data {
		l.Gain.W.Data[i] = 1 + 0.3*rng.NormFloat64()
		l.Bias.W.Data[i] = 0.2 * rng.NormFloat64()
	}
	x := tensor.Randn(rng, 1, 4, 5)
	tgt := tensor.Randn(rng, 1, 4, 5)
	forward := func() float64 {
		loss, _ := MSELoss(l.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(l.Forward(x), tgt)
		l.Backward(g)
	}
	checkModuleGrads(t, l, forward, backward)
	// Input gradient too.
	ZeroGrads(l)
	_, g := MSELoss(l.Forward(x), tgt)
	dx := l.Backward(g)
	num := numGrad(x, forward)
	if e := maxRelErr(dx.Data, num); e > 1e-4 {
		t.Fatalf("LayerNorm dx mismatch: %v", e)
	}
}

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMultiHeadAttention(rng, 6, 2)
	x := tensor.Randn(rng, 1, 2, 3, 6).Reshape(2, 3, 6)
	tgt := tensor.Randn(rng, 1, 2, 3, 6).Reshape(2, 3, 6)
	forward := func() float64 {
		loss, _ := MSELoss(m.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(m.Forward(x), tgt)
		m.Backward(g)
	}
	checkModuleGrads(t, m, forward, backward)
	ZeroGrads(m)
	_, g := MSELoss(m.Forward(x), tgt)
	dx := m.Backward(g)
	num := numGrad(x, forward)
	if e := maxRelErr(dx.Data, num); e > 1e-4 {
		t.Fatalf("attention dx mismatch: %v", e)
	}
}

func TestTransformerBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// tanh feed-forward: the check must avoid ReLU kinks, which make
	// finite differences disagree with the (correct) subgradient.
	b := NewTransformerBlockAct(rng, 6, 2, 8, "tanh")
	x := tensor.Randn(rng, 1, 2, 3, 6).Reshape(2, 3, 6)
	tgt := tensor.Randn(rng, 1, 2, 3, 6).Reshape(2, 3, 6)
	forward := func() float64 {
		loss, _ := MSELoss(b.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(b.Forward(x), tgt)
		b.Backward(g)
	}
	checkModuleGrads(t, b, forward, backward)
}

func TestConv3DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewConv3D(rng, 2, 3, 2, 1, 0)
	x := tensor.Randn(rng, 1, 1, 2, 3, 3, 3).Reshape(1, 2, 3, 3, 3)
	out := c.Forward(x)
	tgt := tensor.Randn(rng, 1, out.Shape...)
	forward := func() float64 {
		loss, _ := MSELoss(c.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(c.Forward(x), tgt)
		c.Backward(g)
	}
	checkModuleGrads(t, c, forward, backward)
	ZeroGrads(c)
	_, g := MSELoss(c.Forward(x), tgt)
	dx := c.Backward(g)
	num := numGrad(x, forward)
	if e := maxRelErr(dx.Data, num); e > 1e-4 {
		t.Fatalf("conv3d dx mismatch: %v", e)
	}
}

func TestConv3DStridePad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := NewConv3D(rng, 1, 2, 3, 2, 1)
	x := tensor.Randn(rng, 1, 1, 1, 5, 5, 5).Reshape(1, 1, 5, 5, 5)
	out := c.Forward(x)
	// (5 + 2 - 3)/2 + 1 = 3
	if out.Dim(2) != 3 || out.Dim(3) != 3 || out.Dim(4) != 3 {
		t.Fatalf("strided conv output %v, want spatial 3³", out.Shape)
	}
	tgt := tensor.Randn(rng, 1, out.Shape...)
	forward := func() float64 {
		loss, _ := MSELoss(c.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(c.Forward(x), tgt)
		c.Backward(g)
	}
	checkModuleGrads(t, c, forward, backward)
}

func TestConvTranspose3DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewConvTranspose3D(rng, 2, 2, 2, 2)
	x := tensor.Randn(rng, 1, 1, 2, 2, 2, 2).Reshape(1, 2, 2, 2, 2)
	out := c.Forward(x)
	// (2-1)*2+2 = 4
	if out.Dim(2) != 4 {
		t.Fatalf("convtranspose output %v, want spatial 4³", out.Shape)
	}
	tgt := tensor.Randn(rng, 1, out.Shape...)
	forward := func() float64 {
		loss, _ := MSELoss(c.Forward(x), tgt)
		return loss
	}
	backward := func() {
		_, g := MSELoss(c.Forward(x), tgt)
		c.Backward(g)
	}
	checkModuleGrads(t, c, forward, backward)
	ZeroGrads(c)
	_, g := MSELoss(c.Forward(x), tgt)
	dx := c.Backward(g)
	num := numGrad(x, forward)
	if e := maxRelErr(dx.Data, num); e > 1e-4 {
		t.Fatalf("convtranspose dx mismatch: %v", e)
	}
}

func TestMSELossValueAndGrad(t *testing.T) {
	p := tensor.FromSlice([]float64{1, 2}, 2)
	tt := tensor.FromSlice([]float64{0, 4}, 2)
	loss, g := MSELoss(p, tt)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("loss = %v", loss)
	}
	if math.Abs(g.Data[0]-1) > 1e-12 || math.Abs(g.Data[1]+2) > 1e-12 {
		t.Fatalf("grad = %v", g.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewLinear(rng, 1, 1)
	opt := NewAdam(0.05)
	// Fit y = 3x - 1.
	x := tensor.FromSlice([]float64{-1, 0, 1, 2}, 4, 1)
	y := tensor.FromSlice([]float64{-4, -1, 2, 5}, 4, 1)
	var loss float64
	for it := 0; it < 500; it++ {
		ZeroGrads(l)
		pred := l.Forward(x)
		var g *tensor.Tensor
		loss, g = MSELoss(pred, y)
		l.Backward(g)
		opt.Step(l)
	}
	if loss > 1e-6 {
		t.Fatalf("Adam failed to fit line: loss %v", loss)
	}
	if math.Abs(l.W.W.Data[0]-3) > 0.01 || math.Abs(l.B.W.Data[0]+1) > 0.01 {
		t.Fatalf("fitted w=%v b=%v", l.W.W.Data[0], l.B.W.Data[0])
	}
}

func TestPlateauScheduler(t *testing.T) {
	opt := NewAdam(1.0)
	s := NewPlateauScheduler(opt, 3, 0.5)
	for i := 0; i < 3; i++ {
		s.Observe(1.0) // first sets best, then two bad epochs
	}
	if opt.LR != 1.0 {
		t.Fatalf("LR decayed too early: %v", opt.LR)
	}
	s.Observe(1.0) // third bad epoch -> decay
	if opt.LR != 0.5 {
		t.Fatalf("LR = %v, want 0.5", opt.LR)
	}
	s.Observe(0.1) // improvement resets
	s.Observe(0.2)
	s.Observe(0.2)
	if opt.LR != 0.5 {
		t.Fatalf("LR decayed during reset window: %v", opt.LR)
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLinear(rng, 3, 3)
	for _, p := range l.Params() {
		p.Grad.Fill(10)
	}
	ClipGradNorm(l, 1.0)
	if n := GradNorm(l); math.Abs(n-1) > 1e-9 {
		t.Fatalf("clipped norm = %v", n)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewLinear(rng, 4, 3)
	if got := ParamCount(l); got != 4*3+3 {
		t.Fatalf("ParamCount = %d", got)
	}
}
