package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpoint format (little-endian): magic "SKNN" | nParams u32 | per
// param: nameLen u32, name bytes, rank u32, dims u32×rank, data f64×len.
var ckptMagic = [4]byte{'S', 'K', 'N', 'N'}

// SaveCheckpoint writes a module's parameters to path. Close errors are
// propagated so a checkpoint truncated by a full disk is reported rather
// than silently accepted.
func SaveCheckpoint(path string, m Module) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	if _, err := w.Write(ckptMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	params := m.Params()
	if err := binary.Write(w, le, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(w, le, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := w.WriteString(p.Name); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint32(len(p.W.Shape))); err != nil {
			return err
		}
		for _, d := range p.W.Shape {
			if err := binary.Write(w, le, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, le, p.W.Data); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// fsync so a crash right after "checkpoint saved" cannot leave a
	// truncated file behind the success message.
	return f.Sync()
}

// LoadCheckpoint restores parameters into a module with the identical
// architecture (same parameter order and shapes).
func LoadCheckpoint(path string, m Module) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	if magic != ckptMagic {
		return fmt.Errorf("nn: %s is not a SKNN checkpoint", path)
	}
	le := binary.LittleEndian
	var n uint32
	if err := binary.Read(r, le, &n); err != nil {
		return err
	}
	params := m.Params()
	if int(n) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, module has %d", n, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(r, le, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint param %q, module expects %q", name, p.Name)
		}
		var rank uint32
		if err := binary.Read(r, le, &rank); err != nil {
			return err
		}
		if int(rank) != len(p.W.Shape) {
			return fmt.Errorf("nn: param %q rank %d, want %d", name, rank, len(p.W.Shape))
		}
		for i := 0; i < int(rank); i++ {
			var d uint32
			if err := binary.Read(r, le, &d); err != nil {
				return err
			}
			if int(d) != p.W.Shape[i] {
				return fmt.Errorf("nn: param %q dim %d is %d, want %d", name, i, d, p.W.Shape[i])
			}
		}
		if err := binary.Read(r, le, p.W.Data); err != nil {
			return err
		}
	}
	return nil
}

// QuantizeFP16 rounds every parameter through IEEE-754 half precision —
// the simulation hook behind the paper's --precision fp16 option. It
// returns the maximum absolute rounding error introduced.
func QuantizeFP16(m Module) float64 {
	worst := 0.0
	for _, p := range m.Params() {
		for i, v := range p.W.Data {
			q := fp16Round(v)
			if e := math.Abs(q - v); e > worst {
				worst = e
			}
			p.W.Data[i] = q
		}
	}
	return worst
}

// fp16Round converts a float64 to IEEE-754 binary16 and back (round to
// nearest even), saturating to ±Inf outside the half range.
func fp16Round(v float64) float64 {
	f32 := float32(v)
	bits := math.Float32bits(f32)
	sign := bits >> 31
	exp := int32((bits>>23)&0xff) - 127
	man := bits & 0x7fffff
	switch {
	case exp == 128: // Inf/NaN pass through
		return v
	case exp > 15:
		return math.Inf(int(1 - 2*int(sign)))
	case exp < -24:
		if sign == 1 {
			return math.Copysign(0, -1)
		}
		return 0
	case exp < -14:
		// Subnormal half: shift mantissa (with implicit 1) into place.
		shift := uint(-exp - 14 + 13)
		full := man | 0x800000
		half := full >> (shift + 10)
		// Round to nearest (ties away, adequate for simulation purposes).
		if full>>(shift+9)&1 == 1 {
			half++
		}
		res := float64(half) / 1024 * math.Pow(2, -14)
		if sign == 1 {
			return -res
		}
		return res
	}
	// Normal half: keep 10 mantissa bits with round-to-nearest-even.
	keep := man >> 13
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && keep&1 == 1) {
		keep++
		if keep == 0x400 {
			keep = 0
			exp++
			if exp > 15 {
				return math.Inf(int(1 - 2*int(sign)))
			}
		}
	}
	res := (1 + float64(keep)/1024) * math.Pow(2, float64(exp))
	if sign == 1 {
		return -res
	}
	return res
}
