package energy

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.AddFlops(1000)
	m.AddBytes(800)
	if m.Flops() != 1000 || m.Bytes() != 800 {
		t.Fatalf("counters = %d flops, %d bytes", m.Flops(), m.Bytes())
	}
	want := 1000*JoulesPerFlop + 800*JoulesPerByte
	if math.Abs(m.Joules()-want) > 1e-20 {
		t.Fatalf("Joules = %v, want %v", m.Joules(), want)
	}
	if math.Abs(m.Kilojoules()-want/1000) > 1e-20 {
		t.Fatalf("Kilojoules = %v", m.Kilojoules())
	}
}

func TestNegativeChargesIgnored(t *testing.T) {
	m := NewMeter()
	m.AddFlops(-5)
	m.AddBytes(-5)
	if m.Flops() != 0 || m.Bytes() != 0 {
		t.Fatal("negative charges must be ignored")
	}
}

func TestMovementComputeRatio(t *testing.T) {
	// Moving one 8-byte datum must cost 100× computing one op on it —
	// the premise from Kogge & Shalf the paper builds on.
	ratio := (8 * JoulesPerByte) / JoulesPerFlop
	if math.Abs(ratio-100) > 1e-9 {
		t.Fatalf("movement:compute ratio = %v, want 100", ratio)
	}
}

func TestConcurrentCharging(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddFlops(1)
				m.AddBytes(2)
			}
		}()
	}
	wg.Wait()
	if m.Flops() != 16000 || m.Bytes() != 32000 {
		t.Fatalf("concurrent totals: %d flops, %d bytes", m.Flops(), m.Bytes())
	}
}

func TestAddAndReset(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.AddFlops(10)
	b.AddFlops(5)
	b.AddBytes(7)
	a.Add(b)
	if a.Flops() != 15 || a.Bytes() != 7 {
		t.Fatalf("Add: %d/%d", a.Flops(), a.Bytes())
	}
	a.Reset()
	if a.Joules() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestStringFormat(t *testing.T) {
	m := NewMeter()
	m.AddFlops(1e9)
	s := m.String()
	if !strings.Contains(s, "Total Energy Consumed") {
		t.Fatalf("String = %q", s)
	}
}

func TestReportTotals(t *testing.T) {
	r := Report{Label: "x", SampleJoules: 1500, TrainJoules: 500}
	if r.TotalJoules() != 2000 {
		t.Fatalf("TotalJoules = %v", r.TotalJoules())
	}
	if r.TotalKJ() != 2 {
		t.Fatalf("TotalKJ = %v", r.TotalKJ())
	}
}
