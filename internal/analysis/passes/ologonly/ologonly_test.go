package ologonly_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ologonly"
)

func TestLongRunningPackage(t *testing.T) {
	analysistest.Run(t, ologonly.Analyzer, "repro/internal/serve")
}

func TestOutOfScopePackage(t *testing.T) {
	analysistest.Run(t, ologonly.Analyzer, "repro/internal/viz")
}
