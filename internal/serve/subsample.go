package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/sampling"
	"repro/internal/sickle"
)

// SubsampleRequest is the JSON body of POST /v1/subsample: either a named
// registry dataset (synthesized on first use, then cached) or a .skl shard
// path written by sickle-subsample, plus the two-phase pipeline parameters.
type SubsampleRequest struct {
	Dataset string `json:"dataset,omitempty"` // a sickle.DatasetNames entry
	Scale   string `json:"scale,omitempty"`   // "small" (default) | "large"
	Shard   string `json:"shard,omitempty"`   // path to a .skl file instead of a dataset

	Snapshot      int    `json:"snapshot"`
	Hypercubes    string `json:"hypercubes,omitempty"`
	Method        string `json:"method,omitempty"`
	NumHypercubes int    `json:"numHypercubes,omitempty"`
	NumSamples    int    `json:"numSamples,omitempty"`
	Cube          int    `json:"cube,omitempty"` // cube edge (clamped to the grid)
	NumClusters   int    `json:"numClusters,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
}

// SubsampleResponse summarizes the pipeline run (or shard read).
type SubsampleResponse struct {
	Dataset   string  `json:"dataset"`
	Snapshot  int     `json:"snapshot"`
	Cubes     int     `json:"cubes"`
	Points    int     `json:"points"`
	CacheHit  bool    `json:"cacheHit"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// datasetKey namespaces cache entries so a dataset name can never collide
// with a shard path.
func datasetKey(name, scale string) string { return "dataset:" + name + "/" + scale }
func shardKey(path string) string          { return "shard:" + path }

// resolveDataset returns the (possibly cached) dataset for a request.
func (s *Server) resolveDataset(name, scaleStr string) (*grid.Dataset, bool, error) {
	scale := sickle.Small
	if strings.EqualFold(scaleStr, "large") {
		scale = sickle.Large
		scaleStr = "large"
	} else {
		scaleStr = "small"
	}
	v, hit, err := s.cache.GetOrLoad(datasetKey(name, scaleStr), func() (any, error) {
		return sickle.BuildDatasetUncached(name, scale)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*grid.Dataset), hit, nil
}

// resolveShard returns the (possibly cached) cube samples of a .skl file.
func (s *Server) resolveShard(path string) ([]sampling.CubeSample, bool, error) {
	v, hit, err := s.cache.GetOrLoad(shardKey(path), func() (any, error) {
		return sickle.LoadCubeSamples(path)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.([]sampling.CubeSample), hit, nil
}

// handleSubsampleRequest runs the two-phase pipeline (or reads a shard) and
// reports what was selected. Only dataset/shard loading is cached — the
// pipeline itself is cheap relative to synthesis and depends on the full
// request, so it runs per call.
func (s *Server) handleSubsampleRequest(req *SubsampleRequest) (*SubsampleResponse, error) {
	t0 := time.Now()
	if req.Shard != "" {
		cubes, hit, err := s.resolveShard(req.Shard)
		if err != nil {
			return nil, err
		}
		points := 0
		for _, cs := range cubes {
			points += len(cs.LocalIdx)
		}
		return &SubsampleResponse{
			Dataset: req.Shard, Cubes: len(cubes), Points: points,
			CacheHit: hit, ElapsedMS: msSince(t0),
		}, nil
	}
	if req.Dataset == "" {
		return nil, fmt.Errorf("serve: request needs dataset or shard")
	}
	d, hit, err := s.resolveDataset(req.Dataset, req.Scale)
	if err != nil {
		return nil, err
	}
	if req.Snapshot < 0 || req.Snapshot >= len(d.Snapshots) {
		return nil, fmt.Errorf("serve: snapshot %d out of range (dataset has %d)", req.Snapshot, len(d.Snapshots))
	}
	f := d.Snapshots[req.Snapshot]
	pcfg := sampling.PipelineConfig{
		Hypercubes:    req.Hypercubes,
		Method:        req.Method,
		NumHypercubes: req.NumHypercubes,
		NumSamples:    req.NumSamples,
		NumClusters:   req.NumClusters,
		Seed:          req.Seed,
	}
	edge := req.Cube
	if edge <= 0 {
		edge = 16
	}
	pcfg.CubeSx = clamp(edge, f.Nx)
	pcfg.CubeSy = clamp(edge, f.Ny)
	pcfg.CubeSz = clamp(edge, f.Nz)
	cubes, err := sampling.SubsampleSnapshot(d, req.Snapshot, pcfg)
	if err != nil {
		return nil, err
	}
	points := 0
	for _, cs := range cubes {
		points += len(cs.LocalIdx)
	}
	return &SubsampleResponse{
		Dataset: d.Label, Snapshot: req.Snapshot, Cubes: len(cubes),
		Points: points, CacheHit: hit, ElapsedMS: msSince(t0),
	}, nil
}

func clamp(v, hi int) int {
	if v > hi {
		return hi
	}
	return v
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
